package hw

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGInt63nRange(t *testing.T) {
	r := NewRNG(9)
	err := quick.Check(func(n int64) bool {
		if n <= 0 {
			n = -n + 1
		}
		v := r.Int63n(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRNGExpPositiveMean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Exp(5.0)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 4.5 || mean > 5.5 {
		t.Fatalf("Exp(5) sample mean %v not near 5", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(13)
	var sum, sumsq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if mean < 9.8 || mean > 10.2 {
		t.Fatalf("Norm mean %v not near 10", mean)
	}
	if variance < 3.4 || variance > 4.6 {
		t.Fatalf("Norm variance %v not near 4", variance)
	}
}

func TestCacheSpecValidate(t *testing.T) {
	good := CacheSpec{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, HitCycles: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := CacheSpec{SizeBytes: 31 << 10, LineBytes: 64, Ways: 8}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-divisible spec accepted")
	}
	zero := CacheSpec{}
	if err := zero.Validate(); err == nil {
		t.Fatal("zero spec accepted")
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache(CacheSpec{SizeBytes: 4 << 10, LineBytes: 64, Ways: 4, HitCycles: 4})
	if c.Lookup(0x1000, false) {
		t.Fatal("hit in empty cache")
	}
	c.Fill(0x1000, false)
	if !c.Lookup(0x1000, false) {
		t.Fatal("miss after fill")
	}
	// Same line, different offset.
	if !c.Lookup(0x103f, false) {
		t.Fatal("miss within same line")
	}
	// Next line misses.
	if c.Lookup(0x1040, false) {
		t.Fatal("unexpected hit on neighboring line")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, line 64, 2 sets => size 256.
	c := NewCache(CacheSpec{SizeBytes: 256, LineBytes: 64, Ways: 2, HitCycles: 1})
	// All addresses map to set 0: stride = line * sets = 128.
	a0, a1, a2 := int64(0), int64(256), int64(512)
	c.Fill(a0, false)
	c.Fill(a1, false)
	if !c.Lookup(a0, false) || !c.Lookup(a1, false) {
		t.Fatal("fills not resident")
	}
	// Touch a0 so a1 is LRU, then fill a2: a1 must be evicted.
	c.Lookup(a0, false)
	c.Fill(a2, false)
	if !c.Lookup(a0, false) {
		t.Fatal("MRU line was evicted")
	}
	if c.Lookup(a1, false) {
		t.Fatal("LRU line survived eviction")
	}
	if !c.Lookup(a2, false) {
		t.Fatal("newly filled line missing")
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(CacheSpec{SizeBytes: 4 << 10, LineBytes: 64, Ways: 4, HitCycles: 4})
	for a := int64(0); a < 4096; a += 64 {
		c.Fill(a, true)
	}
	if c.Occupancy() == 0 {
		t.Fatal("cache empty after fills")
	}
	c.Flush()
	if c.Occupancy() != 0 {
		t.Fatalf("cache still holds %d lines after flush", c.Occupancy())
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c := NewCache(CacheSpec{SizeBytes: 128, LineBytes: 64, Ways: 1, HitCycles: 1})
	// One way, two sets; same-set addresses differ by 128.
	c.Fill(0, true) // dirty
	if !c.Fill(128, false) {
		t.Fatal("evicting a dirty line must report it")
	}
	c.Fill(256, false) // clean victim
	if c.Fill(384, false) {
		t.Fatal("evicting a clean line must not report dirty")
	}
}

func TestCacheEvictRandomReducesOccupancy(t *testing.T) {
	c := NewCache(CacheSpec{SizeBytes: 4 << 10, LineBytes: 64, Ways: 4, HitCycles: 4})
	for a := int64(0); a < 4096; a += 64 {
		c.Fill(a, false)
	}
	before := c.Occupancy()
	c.EvictRandom(NewRNG(3), 32)
	if c.Occupancy() >= before {
		t.Fatalf("occupancy %d did not drop from %d", c.Occupancy(), before)
	}
}

func TestCacheDeterministicSequence(t *testing.T) {
	// Property: two caches fed the same access sequence report the
	// same hits and misses. This is the LRU-determinism property the
	// paper's §3.6 depends on.
	spec := CacheSpec{SizeBytes: 2 << 10, LineBytes: 64, Ways: 2, HitCycles: 1}
	f := func(seed uint64, n uint8) bool {
		a, b := NewCache(spec), NewCache(spec)
		r1, r2 := NewRNG(seed), NewRNG(seed)
		for i := 0; i < int(n)+16; i++ {
			addr1 := r1.Int63n(1 << 14)
			addr2 := r2.Int63n(1 << 14)
			h1 := a.Lookup(addr1, false)
			h2 := b.Lookup(addr2, false)
			if h1 != h2 {
				return false
			}
			if !h1 {
				a.Fill(addr1, false)
				b.Fill(addr2, false)
			}
		}
		return a.Hits == b.Hits && a.Misses == b.Misses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(TLBSpec{Entries: 8, Ways: 2, WalkCycles: 30})
	if tlb.Lookup(5) {
		t.Fatal("hit in empty TLB")
	}
	if !tlb.Lookup(5) {
		t.Fatal("miss after insert")
	}
	tlb.Flush()
	if tlb.Lookup(5) {
		t.Fatal("hit after flush")
	}
}

func TestPageMapperPinnedIsDeterministic(t *testing.T) {
	spec := Optiplex9020()
	m1 := NewPageMapper(spec, true, NewRNG(1))
	m2 := NewPageMapper(spec, true, NewRNG(999)) // different seed must not matter
	for _, addr := range []int64{0, 4096, 123456, 999999, 4096 * 777} {
		if m1.Translate(addr) != m2.Translate(addr) {
			t.Fatalf("pinned mapping differs for %#x", addr)
		}
	}
}

func TestPageMapperUnpinnedVariesWithSeed(t *testing.T) {
	spec := Optiplex9020()
	m1 := NewPageMapper(spec, false, NewRNG(1))
	m2 := NewPageMapper(spec, false, NewRNG(2))
	diff := 0
	for i := int64(0); i < 64; i++ {
		if m1.Translate(i*4096) != m2.Translate(i*4096) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("unpinned mappings identical across seeds")
	}
}

func TestPageMapperOffsetPreserved(t *testing.T) {
	spec := Optiplex9020()
	m := NewPageMapper(spec, true, NewRNG(1))
	p := m.Translate(4096*3 + 123)
	if p%4096 != 123 {
		t.Fatalf("page offset not preserved: %d", p%4096)
	}
}

func TestPageMapperStableWithinRun(t *testing.T) {
	spec := Optiplex9020()
	m := NewPageMapper(spec, false, NewRNG(5))
	a := m.Translate(8192)
	for i := 0; i < 10; i++ {
		if m.Translate(8192) != a {
			t.Fatal("mapping changed within a run")
		}
	}
}

func TestMachineSpecValidate(t *testing.T) {
	if err := Optiplex9020().Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
	if err := SlowerT().Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
	bad := Optiplex9020()
	bad.PageSize = 3000
	if err := bad.Validate(); err == nil {
		t.Fatal("non-power-of-two page size accepted")
	}
}

func TestPsPerCycle(t *testing.T) {
	m := Optiplex9020()
	if got := m.PsPerCycle(); got != 294 {
		t.Fatalf("3.4 GHz should be 294 ps/cycle, got %d", got)
	}
}

func TestPlatformDeterminismSameSeed(t *testing.T) {
	run := func(seed uint64) int64 {
		p := MustNewPlatform(Optiplex9020(), ProfileSanity(), seed)
		p.Initialize()
		for i := int64(0); i < 20000; i++ {
			p.FetchInstr(i * 4 % 65536)
			p.Access(1<<20+(i*64)%(1<<18), 8, i%3 == 0)
			p.AddCycles(1)
		}
		return p.Cycles()
	}
	if run(77) != run(77) {
		t.Fatal("same seed produced different cycle counts")
	}
}

func TestPlatformNoiseOrdering(t *testing.T) {
	// The defining property of Figure 2: more controlled environments
	// have lower variance across seeds.
	variance := func(profile NoiseProfile) float64 {
		var lo, hi int64 = 1 << 62, 0
		for seed := uint64(0); seed < 8; seed++ {
			p := MustNewPlatform(Optiplex9020(), profile, seed)
			p.Initialize()
			start := p.Cycles()
			for i := int64(0); i < 50000; i++ {
				p.FetchInstr(i * 4 % 65536)
				p.Access(1<<20+(i*64)%(1<<20), 8, false)
				p.AddCycles(1)
			}
			d := p.Cycles() - start
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		return float64(hi-lo) / float64(lo)
	}
	noisy := variance(ProfileUserNoisy())
	quiet := variance(ProfileKernelQuiet())
	san := variance(ProfileSanity())
	if !(noisy > quiet) {
		t.Fatalf("user-noisy variance %v not above kernel-quiet %v", noisy, quiet)
	}
	if !(quiet >= san) {
		t.Fatalf("kernel-quiet variance %v below sanity %v", quiet, san)
	}
	if san > 0.02 {
		t.Fatalf("sanity profile variance %v above 2%%", san)
	}
}

func TestPlatformIOPadding(t *testing.T) {
	// With padding, every read costs the same; without, reads jitter.
	pad := MustNewPlatform(Optiplex9020(), ProfileSanity(), 1)
	var costs []int64
	for i := 0; i < 10; i++ {
		before := pad.Cycles()
		pad.IORead(4096)
		costs = append(costs, pad.Cycles()-before)
	}
	for _, c := range costs {
		if c != costs[0] {
			t.Fatalf("padded I/O cost varies: %v", costs)
		}
	}
	raw := MustNewPlatform(Optiplex9020(), ProfileUserNoisy(), 1)
	varied := false
	var first int64 = -1
	for i := 0; i < 20; i++ {
		before := raw.Cycles()
		raw.IORead(4096)
		c := raw.Cycles() - before
		if first == -1 {
			first = c
		} else if c != first {
			varied = true
		}
	}
	if !varied {
		t.Fatal("unpadded I/O cost never varied")
	}
}

func TestPlatformCacheLocalityMatters(t *testing.T) {
	// Sequential access over a small buffer must be much cheaper than
	// strided access over a large one.
	seq := MustNewPlatform(Optiplex9020(), ProfileSanity(), 1)
	seq.Initialize()
	s0 := seq.Cycles()
	for i := int64(0); i < 10000; i++ {
		seq.Access(1<<20+i%4096, 8, false)
	}
	seqCost := seq.Cycles() - s0

	far := MustNewPlatform(Optiplex9020(), ProfileSanity(), 1)
	far.Initialize()
	f0 := far.Cycles()
	for i := int64(0); i < 10000; i++ {
		far.Access(1<<20+(i*8192)%(64<<20), 8, false)
	}
	farCost := far.Cycles() - f0
	if farCost < seqCost*3 {
		t.Fatalf("strided cost %d not much larger than local cost %d", farCost, seqCost)
	}
}

func TestPlatformDMABoostIncreasesContention(t *testing.T) {
	cost := func(boost bool) int64 {
		p := MustNewPlatform(Optiplex9020(), ProfileSanity(), 42)
		p.Initialize()
		p.SetDMAActive(boost)
		start := p.Cycles()
		// All DRAM misses: huge stride.
		for i := int64(0); i < 20000; i++ {
			p.Access((i*1<<16)%(1<<30), 8, false)
		}
		return p.Cycles() - start
	}
	if cost(true) <= cost(false) {
		t.Fatal("DMA boost did not increase memory cost")
	}
}

func TestPlatformInitializeFlushes(t *testing.T) {
	p := MustNewPlatform(Optiplex9020(), ProfileSanity(), 1)
	for i := int64(0); i < 512; i++ {
		p.Access(i*64, 8, false)
	}
	if p.l1d.Occupancy() == 0 {
		t.Fatal("expected resident lines before initialize")
	}
	p.Initialize()
	if p.l1d.Occupancy() != 0 {
		t.Fatal("initialize did not flush L1D under sanity profile")
	}
}

func TestPlatformReportCountsMisses(t *testing.T) {
	p := MustNewPlatform(Optiplex9020(), ProfileSanity(), 1)
	p.Initialize()
	for i := int64(0); i < 1000; i++ {
		p.Access(i*64, 8, false)
	}
	r := p.Report()
	if r.L1DMisses == 0 {
		t.Fatal("expected L1D misses on a cold stream")
	}
	if r.PagesMapped == 0 {
		t.Fatal("expected pages to be mapped")
	}
}

func TestProfilePresetsNamed(t *testing.T) {
	profiles := []NoiseProfile{
		ProfileUserNoisy(), ProfileUserQuiet(), ProfileKernel(),
		ProfileKernelQuiet(), ProfileSanity(), ProfileDirty(), ProfileClean(),
	}
	seen := map[string]bool{}
	for _, p := range profiles {
		if p.Name == "" {
			t.Fatal("profile without a name")
		}
		if seen[p.Name] {
			t.Fatalf("duplicate profile name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestSanityProfileHasResidualBusNoiseOnly(t *testing.T) {
	p := ProfileSanity()
	if p.InterruptsEnabled || p.PreemptionEnabled || p.FreqScalingEnabled {
		t.Fatal("sanity profile must disable interrupts, preemption, freq scaling")
	}
	if p.RandomFrames {
		t.Fatal("sanity profile must pin frames")
	}
	if !p.IOPadding || !p.FlushAtStart {
		t.Fatal("sanity profile must pad I/O and flush at start")
	}
	if p.BusResidual <= 0 {
		t.Fatal("sanity profile must keep residual bus contention (§6.9)")
	}
}

func BenchmarkPlatformAccess(b *testing.B) {
	p := MustNewPlatform(Optiplex9020(), ProfileSanity(), 1)
	p.Initialize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Access(int64(i*64)%(1<<22), 8, false)
	}
}

func BenchmarkPlatformFetch(b *testing.B) {
	p := MustNewPlatform(Optiplex9020(), ProfileSanity(), 1)
	p.Initialize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.FetchInstr(int64(i*4) % 65536)
	}
}
