package hw

// Cache is one level of a physically-indexed, set-associative cache
// with deterministic LRU replacement. The paper relies on LRU
// determinism (§3.6): if the instruction stream and the physical
// frames are identical during play and replay, the cache state evolves
// identically, which is why Sanity flushes caches at initialization
// and pins frames.
type Cache struct {
	spec     CacheSpec
	sets     int64
	lineBits uint
	setMask  int64
	tags     []uint64 // sets*ways entries; tag 0 means empty via valid bit
	valid    []bool
	dirty    []bool
	stamp    []uint64 // per-slot LRU timestamps
	clock    uint64   // monotone access counter, drives LRU

	Hits   int64
	Misses int64
}

// NewCache builds an empty cache with the given geometry.
func NewCache(spec CacheSpec) *Cache {
	sets := spec.Sets()
	n := sets * int64(spec.Ways)
	c := &Cache{
		spec:    spec,
		sets:    sets,
		setMask: sets - 1,
		tags:    make([]uint64, n),
		valid:   make([]bool, n),
		dirty:   make([]bool, n),
		stamp:   make([]uint64, n),
	}
	for b := spec.LineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	return c
}

// Spec returns the geometry this cache was built with.
func (c *Cache) Spec() CacheSpec { return c.spec }

// Lookup probes the cache for the line containing paddr. On a hit it
// refreshes LRU state and returns true. On a miss it returns false
// without inserting; callers insert explicitly with Fill so that a
// multi-level hierarchy can control the fill path.
func (c *Cache) Lookup(paddr int64, write bool) bool {
	set := (paddr >> c.lineBits) & c.setMask
	tag := uint64(paddr >> c.lineBits)
	base := set * int64(c.spec.Ways)
	for w := int64(0); w < int64(c.spec.Ways); w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.clock++
			c.stamp[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Fill inserts the line containing paddr, evicting the LRU way if the
// set is full. It reports whether a dirty line was evicted (the
// hierarchy charges a write-back for it).
func (c *Cache) Fill(paddr int64, write bool) (evictedDirty bool) {
	set := (paddr >> c.lineBits) & c.setMask
	tag := uint64(paddr >> c.lineBits)
	base := set * int64(c.spec.Ways)
	victim := base
	var oldest uint64 = ^uint64(0)
	for w := int64(0); w < int64(c.spec.Ways); w++ {
		i := base + w
		if !c.valid[i] {
			victim = i
			oldest = 0
			break
		}
		if c.stamp[i] < oldest {
			oldest = c.stamp[i]
			victim = i
		}
	}
	evictedDirty = c.valid[victim] && c.dirty[victim]
	c.clock++
	c.tags[victim] = tag
	c.valid[victim] = true
	c.dirty[victim] = write
	c.stamp[victim] = c.clock
	return evictedDirty
}

// Flush invalidates every line, as Sanity does with wbinvd during
// initialization and quiescence (§3.6, §4.2). Statistics survive a
// flush; only the content state is cleared.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
		c.stamp[i] = 0
	}
}

// ResetStats zeroes the hit/miss counters (Flush deliberately keeps
// them; pooled-platform reuse must not).
func (c *Cache) ResetStats() {
	c.Hits, c.Misses = 0, 0
}

// EvictRandom invalidates n pseudo-randomly chosen lines. Interrupt
// handlers displace part of the working set from the cache (§2.4);
// the interrupt noise source uses this to model that displacement.
func (c *Cache) EvictRandom(rng *RNG, n int) {
	total := int64(len(c.valid))
	for k := 0; k < n; k++ {
		i := rng.Int63n(total)
		c.valid[i] = false
		c.dirty[i] = false
	}
}

// Occupancy returns the number of valid lines, used by tests and by
// the quiescence check.
func (c *Cache) Occupancy() int64 {
	var n int64
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}

// TLB is a set-associative translation lookaside buffer over virtual
// page numbers, with the same deterministic LRU policy as the caches.
type TLB struct {
	spec    TLBSpec
	sets    int64
	setMask int64
	tags    []uint64
	valid   []bool
	stamp   []uint64
	clock   uint64

	Hits   int64
	Misses int64
}

// NewTLB builds an empty TLB.
func NewTLB(spec TLBSpec) *TLB {
	sets := int64(spec.Entries / spec.Ways)
	n := sets * int64(spec.Ways)
	return &TLB{
		spec:    spec,
		sets:    sets,
		setMask: sets - 1,
		tags:    make([]uint64, n),
		valid:   make([]bool, n),
		stamp:   make([]uint64, n),
	}
}

// Lookup probes for the given virtual page number, inserting it on a
// miss, and reports whether it hit.
func (t *TLB) Lookup(vpn int64) bool {
	set := vpn & t.setMask
	base := set * int64(t.spec.Ways)
	tag := uint64(vpn)
	for w := int64(0); w < int64(t.spec.Ways); w++ {
		i := base + w
		if t.valid[i] && t.tags[i] == tag {
			t.clock++
			t.stamp[i] = t.clock
			t.Hits++
			return true
		}
	}
	t.Misses++
	victim := base
	var oldest uint64 = ^uint64(0)
	for w := int64(0); w < int64(t.spec.Ways); w++ {
		i := base + w
		if !t.valid[i] {
			victim = i
			break
		}
		if t.stamp[i] < oldest {
			oldest = t.stamp[i]
			victim = i
		}
	}
	t.clock++
	t.tags[victim] = tag
	t.valid[victim] = true
	t.stamp[victim] = t.clock
	return false
}

// Flush invalidates all entries (CR4.PCIDE toggle in the prototype).
func (t *TLB) Flush() {
	for i := range t.valid {
		t.valid[i] = false
		t.stamp[i] = 0
	}
}

// ResetStats zeroes the hit/miss counters for pooled reuse.
func (t *TLB) ResetStats() {
	t.Hits, t.Misses = 0, 0
}
