// Package hw implements a deterministic micro-architectural timing
// model: multi-level set-associative caches, a TLB, a page-to-frame
// mapper, a memory bus with DMA contention, and the noise sources the
// paper's Table 1 enumerates (interrupts, preemption, frequency
// scaling, I/O variance). The Sanity VM charges every instruction and
// memory access through a Platform built from these pieces, so the
// virtual clock advances deterministically for a fixed (program,
// inputs, seed, profile).
//
// This package is the substitution for the paper's physical testbed
// (a Dell Optiplex 9020 driven by a Linux kernel module): Go cannot
// reproduce host instruction timing deterministically, so the sources
// of time noise are modeled explicitly instead. Each Table-1 row maps
// to a switch in NoiseProfile, which is what lets the experiments
// measure how each mitigation shrinks play/replay error.
package hw

import "fmt"

// CacheSpec describes one level of a set-associative cache.
type CacheSpec struct {
	SizeBytes int64 // total capacity
	LineBytes int64 // line (block) size
	Ways      int   // associativity
	HitCycles int64 // latency charged on a hit at this level
}

// Sets returns the number of sets implied by the geometry.
func (c CacheSpec) Sets() int64 {
	return c.SizeBytes / (c.LineBytes * int64(c.Ways))
}

// Validate reports whether the geometry is internally consistent.
func (c CacheSpec) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("hw: cache spec has non-positive geometry: %+v", c)
	}
	if c.SizeBytes%(c.LineBytes*int64(c.Ways)) != 0 {
		return fmt.Errorf("hw: cache size %d not divisible by line*ways", c.SizeBytes)
	}
	if s := c.Sets(); s&(s-1) != 0 {
		return fmt.Errorf("hw: cache set count %d is not a power of two", s)
	}
	return nil
}

// TLBSpec describes the translation lookaside buffer.
type TLBSpec struct {
	Entries    int
	Ways       int
	WalkCycles int64 // page-walk cost charged on a miss
}

// MachineSpec describes a machine type T in the sense of the paper:
// Bob pays Alice for a machine of type T, and the auditor replays on
// another machine of the same type. Two MachineSpecs with different
// fields model the T-vs-T' scenario of Figure 1(a).
type MachineSpec struct {
	Name       string
	ClockGHz   float64
	L1I        CacheSpec
	L1D        CacheSpec
	L2         CacheSpec
	L3         CacheSpec
	TLB        TLBSpec
	DRAMCycles int64 // DRAM access latency beyond L3, in cycles
	PageSize   int64 // bytes
	Frames     int64 // physical frames available to the VM

	// SSDReadCycles is the base latency of a stable-storage read.
	// SSDReadJitter is the half-width of its uniform jitter; when a
	// profile enables I/O padding, reads are padded to base+jitter
	// (the maximal duration, per paper §3.7).
	SSDReadCycles int64
	SSDReadJitter int64
}

// PsPerCycle converts the clock rate into integer picoseconds per
// cycle. All virtual time in the system is an integer count of
// picoseconds so that replays are bit-exact.
func (m MachineSpec) PsPerCycle() int64 {
	return int64(1000.0/m.ClockGHz + 0.5)
}

// Validate checks the whole specification.
func (m MachineSpec) Validate() error {
	if m.ClockGHz <= 0 {
		return fmt.Errorf("hw: machine %q has non-positive clock", m.Name)
	}
	for _, c := range []CacheSpec{m.L1I, m.L1D, m.L2, m.L3} {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	if m.PageSize <= 0 || m.PageSize&(m.PageSize-1) != 0 {
		return fmt.Errorf("hw: page size %d is not a power of two", m.PageSize)
	}
	if m.Frames <= 0 {
		return fmt.Errorf("hw: machine %q has no frames", m.Name)
	}
	if m.TLB.Entries <= 0 || m.TLB.Ways <= 0 || m.TLB.Entries%m.TLB.Ways != 0 {
		return fmt.Errorf("hw: bad TLB spec %+v", m.TLB)
	}
	return nil
}

// Optiplex9020 models the paper's testbed: a 3.40 GHz Core i7-4770
// with a Haswell-like cache hierarchy and an SSD (§6.1).
func Optiplex9020() MachineSpec {
	return MachineSpec{
		Name:          "optiplex9020",
		ClockGHz:      3.4,
		L1I:           CacheSpec{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, HitCycles: 1},
		L1D:           CacheSpec{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, HitCycles: 4},
		L2:            CacheSpec{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8, HitCycles: 12},
		L3:            CacheSpec{SizeBytes: 8 << 20, LineBytes: 64, Ways: 16, HitCycles: 36},
		TLB:           TLBSpec{Entries: 64, Ways: 4, WalkCycles: 30},
		DRAMCycles:    200,
		PageSize:      4096,
		Frames:        1 << 16, // 256 MB of 4 KB frames for the TC
		SSDReadCycles: 170_000, // ~50 us at 3.4 GHz
		SSDReadJitter: 34_000,  // ~10 us
	}
}

// SlowerT is a deliberately weaker machine type T' for the
// cloud-verification scenario: lower clock, half the L3, slower DRAM.
// Replaying Bob's log on T' produces visibly different timing.
func SlowerT() MachineSpec {
	m := Optiplex9020()
	m.Name = "slower-t-prime"
	m.ClockGHz = 2.2
	m.L3 = CacheSpec{SizeBytes: 4 << 20, LineBytes: 64, Ways: 16, HitCycles: 40}
	m.DRAMCycles = 260
	return m
}

// MachineByName resolves a machine-type name — the form that travels
// in logs and shard metadata — back to its full specification. Names
// are the auditor's registry of machine types it can model; an unknown
// name is an error, never a guessed spec.
func MachineByName(name string) (MachineSpec, error) {
	for _, m := range KnownMachines() {
		if m.Name == name {
			return m, nil
		}
	}
	return MachineSpec{}, fmt.Errorf("hw: unknown machine type %q", name)
}

// KnownMachines lists every machine type the auditor can model.
func KnownMachines() []MachineSpec {
	return []MachineSpec{Optiplex9020(), SlowerT()}
}
