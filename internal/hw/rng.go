package hw

import "math"

// RNG is a small deterministic pseudo-random number generator
// (SplitMix64). The hardware model must be reproducible for a fixed
// seed across runs, architectures, and Go versions, so we avoid
// math/rand (whose stream is only stable per major version) and use a
// generator whose entire state is a single uint64.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63n returns a value uniformly distributed in [0, n). n must be > 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("hw: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a value uniformly distributed in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given mean.
// Used for interrupt and preemption inter-arrival times.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u <= 0 {
		u = 1e-12
	}
	return -mean * ln(1-u)
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, via the polar (Marsaglia) method.
func (r *RNG) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*sqrt(-2*ln(s)/s)
		}
	}
}

// Split derives an independent generator from this one. The derived
// stream is decorrelated from the parent's future output.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0x5851f42d4c957f2d)
}

// State exposes the generator's single word of state, so an engine
// snapshot can persist it.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a state captured with State.
func (r *RNG) SetState(s uint64) { r.state = s }

// Skip advances the stream past n draws in O(1). SplitMix64's state
// is a plain counter, which is what makes windowed replay able to
// reconstruct "the generator after exactly n draws" without replaying
// them.
func (r *RNG) Skip(n uint64) {
	r.state += n * 0x9e3779b97f4a7c15
}

// ln and sqrt wrap the math package so the rest of this file reads as
// self-contained numeric code.
func ln(x float64) float64   { return math.Log(x) }
func sqrt(x float64) float64 { return math.Sqrt(x) }
