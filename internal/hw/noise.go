package hw

// NoiseProfile selects which sources of time noise are active and how
// strong they are. Each field corresponds to a row of the paper's
// Table 1; the experiment presets below correspond to the execution
// environments measured in Figures 2 and 6.
type NoiseProfile struct {
	Name string

	// Interrupts models asynchronous hardware interrupts striking the
	// core that runs the program. Rate is in events per simulated
	// millisecond; each event stalls the core and evicts cache lines.
	InterruptsEnabled bool
	InterruptRate     float64 // events / ms
	InterruptCycles   int64   // handler cost per event
	InterruptEvicts   int     // cache lines displaced per event

	// Preemption models the kernel scheduling other tasks over the
	// program (multi-user "dirty" environments only).
	PreemptionEnabled bool
	PreemptionRate    float64 // events / ms
	PreemptionCycles  int64   // mean stolen slice, exponential

	// FreqScaling models dynamic frequency scaling / TurboBoost: the
	// effective cycle cost drifts multiplicatively over time. Sanity
	// disables it in the BIOS (§4.2).
	FreqScalingEnabled bool
	FreqScalingSpread  float64 // max fractional slowdown, e.g. 0.08

	// RandomFrames corresponds to the paging row: when set, physical
	// frames are assigned randomly per run instead of pinned.
	RandomFrames bool

	// BusResidual is the probability that a DRAM access pays extra
	// cycles due to memory-bus contention with the SC's DMA traffic.
	// This is the noise source Sanity cannot eliminate (§3.3, §6.9):
	// it stays non-zero even in the Sanity profile and is what bounds
	// replay accuracy. BusExtraCycles is the penalty per such event.
	BusResidual    float64
	BusExtraCycles int64

	// SCHeartbeatRate is the rate (events per simulated millisecond)
	// at which the supporting core's housekeeping (inspecting the T-S
	// buffer, draining device queues) crosses the shared memory bus
	// and briefly stalls the TC. Like BusResidual this cannot be
	// eliminated — the SC is what isolates the TC in the first place
	// (§3.3) — so every profile keeps a small rate. SCHeartbeatCycles
	// is the maximum stall per event (uniformly drawn).
	SCHeartbeatRate   float64
	SCHeartbeatCycles int64

	// IOPadding pads stable-storage reads to their maximal duration
	// (§3.7). When false, each read pays a uniformly jittered latency.
	IOPadding bool

	// FlushAtStart performs the initialization/quiescence cache+TLB
	// flush (§3.6). Disabling it is one of the ablations.
	FlushAtStart bool

	// SchedulerJitter perturbs the thread time-slice boundaries by a
	// pseudo-random number of instructions, modeling a nondeterministic
	// scheduler. Sanity's deterministic multithreading sets this to 0.
	SchedulerJitter int64
}

// ProfileUserNoisy is Figure 2 scenario (1): user level with GUI and
// network enabled. Everything fires.
func ProfileUserNoisy() NoiseProfile {
	return NoiseProfile{
		Name:               "user-noisy",
		SCHeartbeatRate:    3.0,
		SCHeartbeatCycles:  2400,
		InterruptsEnabled:  true,
		InterruptRate:      8.0,
		InterruptCycles:    24_000,
		InterruptEvicts:    220,
		PreemptionEnabled:  true,
		PreemptionRate:     0.35,
		PreemptionCycles:   2_400_000,
		FreqScalingEnabled: true,
		FreqScalingSpread:  0.10,
		RandomFrames:       true,
		BusResidual:        0.020,
		BusExtraCycles:     120,
		IOPadding:          false,
		FlushAtStart:       false,
		SchedulerJitter:    12_000,
	}
}

// ProfileUserQuiet is Figure 2 scenario (2): single-user mode, RAM
// disk, no GUI. Preemption largely gone, interrupts reduced.
func ProfileUserQuiet() NoiseProfile {
	return NoiseProfile{
		Name:               "user-quiet",
		SCHeartbeatRate:    2.0,
		SCHeartbeatCycles:  1600,
		InterruptsEnabled:  true,
		InterruptRate:      2.0,
		InterruptCycles:    18_000,
		InterruptEvicts:    120,
		PreemptionEnabled:  true,
		PreemptionRate:     0.02,
		PreemptionCycles:   900_000,
		FreqScalingEnabled: true,
		FreqScalingSpread:  0.05,
		RandomFrames:       true,
		BusResidual:        0.010,
		BusExtraCycles:     120,
		IOPadding:          false,
		FlushAtStart:       false,
		SchedulerJitter:    4_000,
	}
}

// ProfileKernel is Figure 2 scenario (3): kernel mode. No preemption,
// interrupts still on.
func ProfileKernel() NoiseProfile {
	return NoiseProfile{
		Name:               "kernel",
		SCHeartbeatRate:    1.5,
		SCHeartbeatCycles:  1200,
		InterruptsEnabled:  true,
		InterruptRate:      1.2,
		InterruptCycles:    15_000,
		InterruptEvicts:    80,
		FreqScalingEnabled: true,
		FreqScalingSpread:  0.03,
		RandomFrames:       true,
		BusResidual:        0.006,
		BusExtraCycles:     120,
		FlushAtStart:       false,
	}
}

// ProfileKernelQuiet is Figure 2 scenario (4): kernel mode with IRQs
// off, caches and TLB flushed, execution pinned to a core.
func ProfileKernelQuiet() NoiseProfile {
	return NoiseProfile{
		Name:              "kernel-quiet",
		SCHeartbeatRate:   1.0,
		SCHeartbeatCycles: 900,
		BusResidual:       0.003,
		BusExtraCycles:    120,
		RandomFrames:      true, // frames still not pinned in scenario (4)
		FlushAtStart:      true,
	}
}

// ProfileSanity is the full Sanity design: interrupts confined to the
// SC, no preemption, frequency scaling disabled, frames pinned, caches
// flushed at start, I/O padded. Only the residual memory-bus
// contention with the SC remains (§6.9).
func ProfileSanity() NoiseProfile {
	return NoiseProfile{
		Name:              "sanity",
		SCHeartbeatRate:   0.8,
		SCHeartbeatCycles: 700,
		BusResidual:       0.0015,
		BusExtraCycles:    110,
		IOPadding:         true,
		FlushAtStart:      true,
	}
}

// ProfileDirty is the Figure 6 "dirty" Oracle-JVM configuration:
// multi-user mode with GUI and networking. It is the same environment
// as ProfileUserNoisy; the separate constructor keeps experiment code
// self-describing.
func ProfileDirty() NoiseProfile {
	p := ProfileUserNoisy()
	p.Name = "dirty"
	return p
}

// ProfileClean is the Figure 6 "clean" configuration: single-user
// mode, JVM the only program running — the closest an out-of-the-box
// JVM gets to timing stability.
func ProfileClean() NoiseProfile {
	p := ProfileKernel()
	p.Name = "clean"
	p.InterruptRate = 0.8
	p.FreqScalingSpread = 0.02
	return p
}

// noiseState is the per-run dynamic state of the noise processes:
// pre-scheduled next-arrival times for the point processes and the
// current frequency-scaling factor.
type noiseState struct {
	profile NoiseProfile
	rng     *RNG

	nextInterruptCycle  int64
	nextPreemptionCycle int64
	nextHeartbeatCycle  int64
	freqMilli           int64 // charged cycles are scaled by freqMilli/1000
	nextFreqUpdateCycle int64

	// Accounting, surfaced for tests and for the ablation report.
	Interrupts   int64
	Preemptions  int64
	Heartbeats   int64
	StolenCycles int64
}

func newNoiseState(p NoiseProfile, rng *RNG, cyclesPerMs float64) *noiseState {
	return newNoiseStateAt(p, rng, cyclesPerMs, 0)
}

// newNoiseStateAt schedules the noise point processes relative to the
// clock value at, so a noise state rebuilt at a quiescence boundary
// behaves identically whether the platform's absolute cycle count is
// the original run's or a restored checkpoint's.
func newNoiseStateAt(p NoiseProfile, rng *RNG, cyclesPerMs float64, at int64) *noiseState {
	ns := &noiseState{profile: p, rng: rng, freqMilli: 1000}
	if p.InterruptsEnabled && p.InterruptRate > 0 {
		ns.nextInterruptCycle = at + int64(rng.Exp(cyclesPerMs/p.InterruptRate))
	} else {
		ns.nextInterruptCycle = -1
	}
	if p.PreemptionEnabled && p.PreemptionRate > 0 {
		ns.nextPreemptionCycle = at + int64(rng.Exp(cyclesPerMs/p.PreemptionRate))
	} else {
		ns.nextPreemptionCycle = -1
	}
	if p.SCHeartbeatRate > 0 && p.SCHeartbeatCycles > 0 {
		ns.nextHeartbeatCycle = at + int64(rng.Exp(cyclesPerMs/p.SCHeartbeatRate))
	} else {
		ns.nextHeartbeatCycle = -1
	}
	if p.FreqScalingEnabled {
		spread := int64(p.FreqScalingSpread * 1000)
		if spread > 0 {
			ns.freqMilli = 1000 + rng.Int63n(spread+1)
		}
		ns.nextFreqUpdateCycle = at + int64(cyclesPerMs) // re-draw every ~1ms
	} else {
		ns.nextFreqUpdateCycle = -1
	}
	return ns
}
