package hw

// PageMapper translates the TC's virtual pages to physical frames.
//
// The paper's point (§3.6): even with an identical virtual layout,
// different physical frames behind the pages change conflict patterns
// in physically-indexed caches, so Sanity "deterministically chooses
// the frames that will be mapped to the TC's address space". We model
// both behaviors: a pinned mapper assigns frames by a fixed rule, and
// an unpinned mapper assigns frames pseudo-randomly per run (the
// paging noise source), so two runs of the same program see different
// physical conflict patterns.
type PageMapper struct {
	pageSize int64
	pageBits uint
	frames   int64
	pinned   bool
	rng      *RNG
	table    map[int64]int64 // virtual page number -> frame
	nextSeq  int64           // next frame for pinned assignment
}

// NewPageMapper builds a mapper. When pinned is true the mapping is
// the same in every run (sequential first-touch order, which is
// deterministic because the instruction stream is); otherwise frames
// are drawn from rng, so each run gets a different layout.
func NewPageMapper(spec MachineSpec, pinned bool, rng *RNG) *PageMapper {
	m := &PageMapper{
		pageSize: spec.PageSize,
		frames:   spec.Frames,
		pinned:   pinned,
		rng:      rng,
		table:    make(map[int64]int64),
	}
	for b := spec.PageSize; b > 1; b >>= 1 {
		m.pageBits++
	}
	return m
}

// Translate maps a virtual address to a physical address, installing
// a frame on first touch.
func (m *PageMapper) Translate(vaddr int64) int64 {
	vpn := vaddr >> m.pageBits
	frame, ok := m.table[vpn]
	if !ok {
		if m.pinned {
			frame = m.nextSeq % m.frames
			m.nextSeq++
		} else {
			frame = m.rng.Int63n(m.frames)
		}
		m.table[vpn] = frame
	}
	return frame<<m.pageBits | (vaddr & (m.pageSize - 1))
}

// VPN returns the virtual page number of vaddr.
func (m *PageMapper) VPN(vaddr int64) int64 { return vaddr >> m.pageBits }

// Mapped returns the number of pages currently mapped.
func (m *PageMapper) Mapped() int { return len(m.table) }

// Pinned reports whether the mapper uses the deterministic rule.
func (m *PageMapper) Pinned() bool { return m.pinned }
