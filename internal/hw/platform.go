package hw

import "fmt"

// Platform is the timed core's view of the hardware: it owns the
// cache hierarchy, the TLB, the page mapper, the virtual clock, and
// the noise processes. The VM charges all instruction fetches, data
// accesses, and I/O operations through a Platform; the resulting cycle
// count is the execution's virtual time.
//
// A Platform is deterministic: two Platforms built with the same
// (spec, profile, seed) charge identical cycle counts for identical
// access sequences. Varying only the seed models re-running the same
// program in the same environment — the residual differences are the
// "time noise" the paper measures.
type Platform struct {
	Spec    MachineSpec
	Profile NoiseProfile

	l1i, l1d, l2, l3 *Cache
	tlb              *TLB
	mapper           *PageMapper
	noise            *noiseState
	rng              *RNG

	cycles     int64
	psPerCycle int64
	dmaBoost   int64 // multiplies bus-contention probability while SC DMA is in flight

	// InstrFetches and DataAccesses count charged operations, for
	// tests and the stats report.
	InstrFetches int64
	DataAccesses int64
	IOReads      int64
}

// NewPlatform validates the spec and builds a platform seeded with
// seed. The seed drives every stochastic noise source; the structural
// state (caches, mapper in pinned mode) is seed-independent.
func NewPlatform(spec MachineSpec, profile NoiseProfile, seed uint64) (*Platform, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := NewRNG(seed)
	cyclesPerMs := spec.ClockGHz * 1e6
	p := &Platform{
		Spec:       spec,
		Profile:    profile,
		l1i:        NewCache(spec.L1I),
		l1d:        NewCache(spec.L1D),
		l2:         NewCache(spec.L2),
		l3:         NewCache(spec.L3),
		tlb:        NewTLB(spec.TLB),
		rng:        rng,
		psPerCycle: spec.PsPerCycle(),
		dmaBoost:   1,
	}
	p.mapper = NewPageMapper(spec, !profile.RandomFrames, rng.Split())
	p.noise = newNoiseState(profile, rng.Split(), cyclesPerMs)
	return p, nil
}

// MustNewPlatform is NewPlatform for callers with known-good specs
// (tests, presets); it panics on error.
func MustNewPlatform(spec MachineSpec, profile NoiseProfile, seed uint64) *Platform {
	p, err := NewPlatform(spec, profile, seed)
	if err != nil {
		panic(fmt.Sprintf("hw: %v", err))
	}
	return p
}

// Initialize performs the paper's initialization and quiescence step
// (§3.6): flush the caches and TLB (when the profile calls for it) and
// charge a fixed quiescence period that lets asynchronous flushes and
// in-flight device operations drain. The cost is identical in play and
// replay, so it cancels out of all comparisons.
//
// Without the flush, the machine starts with whatever the previous
// activity left in the caches — modeled as seed-dependent resident
// lines — so two executions begin from different cache states and
// their early miss patterns diverge. This is exactly the noise the
// flush exists to remove.
func (p *Platform) Initialize() {
	if p.Profile.FlushAtStart {
		p.l1i.Flush()
		p.l1d.Flush()
		p.l2.Flush()
		p.l3.Flush()
		p.tlb.Flush()
	} else {
		r := p.rng.Split()
		for i := 0; i < 2000; i++ {
			addr := r.Int63n(1 << 30)
			p.l1d.Fill(addr, r.Uint64()&1 == 0)
			p.l2.Fill(addr, false)
			p.l3.Fill(addr, false)
		}
		for i := 0; i < 48; i++ {
			p.tlb.Lookup(r.Int63n(1 << 18))
		}
	}
	p.addRawCycles(500_000) // quiescence period
}

// Reset returns a used platform to the exact state NewPlatform(Spec,
// Profile, seed) constructs, without reallocating the cache, TLB, and
// stamp arrays — several megabytes per platform on a realistic
// machine model. The audit pipeline replays one log per job across a
// worker pool; pooling platforms through Reset removes the dominant
// per-job allocation.
//
// Equivalence with a fresh platform is exact: the derivation order of
// the seeded generators (base rng, then the mapper's split, then the
// noise state's split) mirrors NewPlatform; caches and TLB come back
// empty with zeroed statistics. The only surviving difference is the
// caches' internal LRU clock, which is compared only relatively and
// therefore cannot alter any charge. The determinism test suite
// (byte-identical verdict streams across runs and worker counts)
// would catch any divergence, since pool hits vary run to run.
func (p *Platform) Reset(seed uint64) {
	rng := NewRNG(seed)
	p.rng = rng
	p.cycles = 0
	p.dmaBoost = 1
	p.InstrFetches, p.DataAccesses, p.IOReads = 0, 0, 0
	for _, c := range []*Cache{p.l1i, p.l1d, p.l2, p.l3} {
		c.Flush()
		c.ResetStats()
	}
	p.tlb.Flush()
	p.tlb.ResetStats()
	p.mapper = NewPageMapper(p.Spec, !p.Profile.RandomFrames, rng.Split())
	p.noise = newNoiseState(p.Profile, rng.Split(), p.Spec.ClockGHz*1e6)
}

// Quiesce performs an epoch boundary: the same initialization-and-
// quiescence step as Initialize (§3.6), but re-keyed mid-run. The
// caches and TLB are flushed, the page mapper is re-pinned from
// scratch, and every noise process is rescheduled from a generator
// derived from epochSeed, relative to the current clock; then the
// fixed quiescence period is charged, during which the new epoch's
// events may fire.
//
// The point of re-keying (rather than letting the old noise state
// run on) is that the platform's entire timing state right after
// Quiesce is a pure function of (spec, profile, epochSeed) — nothing
// of the access history before the boundary survives except the
// clock value, and the noise schedule is relative to the clock. A
// replay that restores a checkpointed machine state at a boundary
// and calls Quiesce with the same epochSeed therefore continues with
// exactly the timing evolution a full replay has when it crosses the
// same boundary. Play and replay call Quiesce at identical points
// with seeds derived from their own configuration seeds, so the
// boundary cost cancels out of all comparisons, exactly like
// Initialize.
//
// Event and miss counters carry over, so NoiseReport still covers
// the whole run.
func (p *Platform) Quiesce(epochSeed uint64) {
	p.l1i.Flush()
	p.l1d.Flush()
	p.l2.Flush()
	p.l3.Flush()
	p.tlb.Flush()
	rng := NewRNG(epochSeed)
	p.rng = rng.Split()
	p.mapper = NewPageMapper(p.Spec, !p.Profile.RandomFrames, rng.Split())
	old := p.noise
	cyclesPerMs := p.Spec.ClockGHz * 1e6
	p.noise = newNoiseStateAt(p.Profile, rng.Split(), cyclesPerMs, p.cycles)
	p.noise.Interrupts = old.Interrupts
	p.noise.Preemptions = old.Preemptions
	p.noise.Heartbeats = old.Heartbeats
	p.noise.StolenCycles = old.StolenCycles
	p.addRawCycles(500_000) // quiescence period
}

// RestoreCycles forces the virtual clock, used when a replay resumes
// from a checkpointed machine state so its absolute timestamps line
// up with the recorded execution's. Timing behavior after a Quiesce
// is scheduled relative to the clock, so the value itself never
// feeds back into costs.
func (p *Platform) RestoreCycles(c int64) { p.cycles = c }

// DMAActive reports whether an SC DMA burst is marked in flight; it
// is part of the machine state a checkpoint captures.
func (p *Platform) DMAActive() bool { return p.dmaBoost != 1 }

// Cycles returns the virtual cycle count so far.
func (p *Platform) Cycles() int64 { return p.cycles }

// TimePs returns the virtual time in picoseconds.
func (p *Platform) TimePs() int64 { return p.cycles * p.psPerCycle }

// PsPerCycle exposes the clock conversion for trace consumers.
func (p *Platform) PsPerCycle() int64 { return p.psPerCycle }

// SetDMAActive marks the start/end of an SC DMA burst (a packet being
// copied across the shared memory bus). While active, the probability
// of bus contention on a DRAM access is amplified. This is the
// TC-visible residue of the supporting core (§3.3).
func (p *Platform) SetDMAActive(active bool) {
	if active {
		p.dmaBoost = 6
	} else {
		p.dmaBoost = 1
	}
}

// AddCycles charges n base cycles of pure computation, applying
// frequency scaling and letting scheduled noise events fire.
func (p *Platform) AddCycles(n int64) {
	if n <= 0 {
		return
	}
	if p.noise.freqMilli != 1000 {
		n = n * p.noise.freqMilli / 1000
	}
	p.addRawCycles(n)
}

// addRawCycles advances the clock and fires any noise events whose
// scheduled arrival falls inside the advanced window.
func (p *Platform) addRawCycles(n int64) {
	p.cycles += n
	ns := p.noise
	for ns.nextInterruptCycle >= 0 && p.cycles >= ns.nextInterruptCycle {
		ns.Interrupts++
		p.cycles += ns.profile.InterruptCycles
		ns.StolenCycles += ns.profile.InterruptCycles
		if ns.profile.InterruptEvicts > 0 {
			p.l1d.EvictRandom(ns.rng, ns.profile.InterruptEvicts)
			p.l2.EvictRandom(ns.rng, ns.profile.InterruptEvicts/2)
		}
		// Reschedule from the event's own time (not the possibly far
		// ahead p.cycles) so bulk advances — idle skips, padded I/O —
		// still see the configured event rate.
		gap := int64(ns.rng.Exp(p.Spec.ClockGHz * 1e6 / ns.profile.InterruptRate))
		ns.nextInterruptCycle += max64(gap, 1)
	}
	for ns.nextPreemptionCycle >= 0 && p.cycles >= ns.nextPreemptionCycle {
		ns.Preemptions++
		stolen := int64(ns.rng.Exp(float64(ns.profile.PreemptionCycles)))
		p.cycles += stolen
		ns.StolenCycles += stolen
		// A preemption wipes most of the working set.
		p.l1d.EvictRandom(ns.rng, 400)
		p.l2.EvictRandom(ns.rng, 1600)
		p.l3.EvictRandom(ns.rng, 3200)
		gap := int64(ns.rng.Exp(p.Spec.ClockGHz * 1e6 / ns.profile.PreemptionRate))
		ns.nextPreemptionCycle += max64(gap, 1)
	}
	for ns.nextHeartbeatCycle >= 0 && p.cycles >= ns.nextHeartbeatCycle {
		ns.Heartbeats++
		stall := 1 + ns.rng.Int63n(ns.profile.SCHeartbeatCycles)
		p.cycles += stall
		ns.StolenCycles += stall
		gap := int64(ns.rng.Exp(p.Spec.ClockGHz * 1e6 / ns.profile.SCHeartbeatRate))
		ns.nextHeartbeatCycle += max64(gap, 1)
	}
	if ns.nextFreqUpdateCycle >= 0 && p.cycles >= ns.nextFreqUpdateCycle {
		spread := int64(ns.profile.FreqScalingSpread * 1000)
		if spread > 0 {
			ns.freqMilli = 1000 + ns.rng.Int63n(spread+1)
		}
		ns.nextFreqUpdateCycle = p.cycles + int64(p.Spec.ClockGHz*1e6)
	}
}

// FetchInstr charges the instruction-fetch cost for the opcode at the
// given virtual address (one I-cache probe; misses walk the shared
// L2/L3/DRAM path).
func (p *Platform) FetchInstr(vaddr int64) {
	p.InstrFetches++
	p.memAccess(p.l1i, vaddr, 4, false)
}

// Access charges a data access of the given size at vaddr.
func (p *Platform) Access(vaddr int64, size int64, write bool) {
	p.DataAccesses++
	p.memAccess(p.l1d, vaddr, size, write)
	// Accesses that straddle a cache line pay for the second line too.
	line := p.Spec.L1D.LineBytes
	if (vaddr&(line-1))+size > line {
		p.DataAccesses++
		p.memAccess(p.l1d, vaddr+size-1, 1, write)
	}
}

// memAccess walks the hierarchy starting at the given L1 and charges
// the appropriate latency.
func (p *Platform) memAccess(l1 *Cache, vaddr, size int64, write bool) {
	// Translation first.
	if !p.tlb.Lookup(p.mapper.VPN(vaddr)) {
		p.AddCycles(p.Spec.TLB.WalkCycles)
	}
	paddr := p.mapper.Translate(vaddr)

	if l1.Lookup(paddr, write) {
		p.AddCycles(l1.Spec().HitCycles)
		return
	}
	if p.l2.Lookup(paddr, write) {
		p.AddCycles(p.Spec.L2.HitCycles)
		l1.Fill(paddr, write)
		return
	}
	if p.l3.Lookup(paddr, write) {
		p.AddCycles(p.Spec.L3.HitCycles)
		p.l2.Fill(paddr, write)
		l1.Fill(paddr, write)
		return
	}
	// DRAM access; this is where memory-bus contention with the SC's
	// DMA traffic can strike (§3.3, §6.9).
	cost := p.Spec.L3.HitCycles + p.Spec.DRAMCycles
	prob := p.Profile.BusResidual * float64(p.dmaBoost)
	if prob > 0 && p.rng.Float64() < prob {
		cost += p.Profile.BusExtraCycles
	}
	if p.l3.Fill(paddr, write) {
		cost += p.Spec.DRAMCycles / 2 // write-back of a dirty victim
	}
	p.l2.Fill(paddr, write)
	l1.Fill(paddr, write)
	p.AddCycles(cost)
}

// IORead charges a stable-storage read of the given size. With I/O
// padding (§3.7) every read costs the maximal duration, making the
// operation time-deterministic; without it, each read pays a
// pseudo-random jitter.
func (p *Platform) IORead(size int64) {
	p.IOReads++
	per4k := (size + 4095) / 4096
	base := p.Spec.SSDReadCycles * max64(per4k, 1)
	if p.Profile.IOPadding {
		p.addRawCycles(base + p.Spec.SSDReadJitter)
		return
	}
	p.addRawCycles(base + p.rng.Int63n(p.Spec.SSDReadJitter+1))
}

// SliceJitter returns the scheduler's perturbation of the next thread
// time-slice boundary, in instructions. Zero under deterministic
// multithreading.
func (p *Platform) SliceJitter() int64 {
	j := p.Profile.SchedulerJitter
	if j <= 0 {
		return 0
	}
	return p.rng.Int63n(2*j+1) - j
}

// NoiseReport summarizes the noise events that fired during a run.
type NoiseReport struct {
	Interrupts   int64
	Preemptions  int64
	StolenCycles int64
	L1DMisses    int64
	L2Misses     int64
	L3Misses     int64
	TLBMisses    int64
	PagesMapped  int
}

// Report returns the run's noise and memory-system statistics.
func (p *Platform) Report() NoiseReport {
	return NoiseReport{
		Interrupts:   p.noise.Interrupts,
		Preemptions:  p.noise.Preemptions,
		StolenCycles: p.noise.StolenCycles,
		L1DMisses:    p.l1d.Misses,
		L2Misses:     p.l2.Misses,
		L3Misses:     p.l3.Misses,
		TLBMisses:    p.tlb.Misses,
		PagesMapped:  p.mapper.Mapped(),
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
