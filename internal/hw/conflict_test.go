package hw

import "testing"

// TestPhysicalIndexingConflicts demonstrates why frame pinning matters
// (§3.6): the same virtual access pattern costs differently under two
// different virtual→physical mappings, because physically-indexed
// caches see different conflict sets.
func TestPhysicalIndexingConflicts(t *testing.T) {
	cost := func(seed uint64) int64 {
		p := MustNewPlatform(Optiplex9020(), func() NoiseProfile {
			prof := ProfileSanity()
			prof.RandomFrames = true // unpinned: mapping varies by seed
			prof.SCHeartbeatRate = 0 // isolate the cache effect
			prof.BusResidual = 0
			return prof
		}(), seed)
		p.Initialize()
		start := p.Cycles()
		// Touch many pages repeatedly; conflicts depend on frames.
		for rep := 0; rep < 4; rep++ {
			for page := int64(0); page < 512; page++ {
				p.Access(page*4096, 8, false)
			}
		}
		return p.Cycles() - start
	}
	a, b := cost(1), cost(2)
	if a == b {
		t.Fatal("random frame mappings produced identical costs; physical indexing is not modeled")
	}
}

// TestPinnedFramesReproducibleCosts is the converse: pinned frames
// give identical costs across seeds (with other noise off).
func TestPinnedFramesReproducibleCosts(t *testing.T) {
	cost := func(seed uint64) int64 {
		prof := ProfileSanity()
		prof.SCHeartbeatRate = 0
		prof.BusResidual = 0
		p := MustNewPlatform(Optiplex9020(), prof, seed)
		p.Initialize()
		start := p.Cycles()
		for rep := 0; rep < 4; rep++ {
			for page := int64(0); page < 512; page++ {
				p.Access(page*4096, 8, false)
			}
		}
		return p.Cycles() - start
	}
	if cost(1) != cost(2) {
		t.Fatal("pinned frames still cost differently across seeds")
	}
}

// TestCacheSetConflictGeometry verifies that addresses separated by
// (sets * line) conflict in the same set and evict each other once
// associativity is exceeded, while distinct-set addresses coexist.
func TestCacheSetConflictGeometry(t *testing.T) {
	spec := CacheSpec{SizeBytes: 8 << 10, LineBytes: 64, Ways: 2, HitCycles: 1}
	c := NewCache(spec)
	stride := spec.Sets() * spec.LineBytes
	// Fill one set beyond associativity.
	for i := int64(0); i < 3; i++ {
		c.Fill(i*stride, false)
	}
	hits := 0
	for i := int64(0); i < 3; i++ {
		if c.Lookup(i*stride, false) {
			hits++
		}
	}
	if hits > 2 {
		t.Fatalf("3 conflicting lines resident in a 2-way set (%d hits)", hits)
	}
	// Different sets coexist freely.
	c2 := NewCache(spec)
	for i := int64(0); i < 3; i++ {
		c2.Fill(i*spec.LineBytes, false)
	}
	for i := int64(0); i < 3; i++ {
		if !c2.Lookup(i*spec.LineBytes, false) {
			t.Fatal("distinct sets evicted each other")
		}
	}
}

// TestLineStraddlingAccessChargesTwice verifies the unaligned-access
// path: an 8-byte access crossing a line boundary probes two lines.
func TestLineStraddlingAccessChargesTwice(t *testing.T) {
	prof := ProfileSanity()
	prof.SCHeartbeatRate = 0
	prof.BusResidual = 0
	p := MustNewPlatform(Optiplex9020(), prof, 1)
	p.Initialize()
	before := p.DataAccesses
	p.Access(64-4, 8, false) // straddles the first line boundary
	if p.DataAccesses-before != 2 {
		t.Fatalf("straddling access charged %d probes, want 2", p.DataAccesses-before)
	}
	before = p.DataAccesses
	p.Access(128, 8, false) // aligned
	if p.DataAccesses-before != 1 {
		t.Fatalf("aligned access charged %d probes, want 1", p.DataAccesses-before)
	}
}

// TestHeartbeatFiresAtConfiguredRate checks the SC housekeeping noise
// source fires roughly at its configured rate.
func TestHeartbeatFiresAtConfiguredRate(t *testing.T) {
	prof := ProfileSanity()
	p := MustNewPlatform(Optiplex9020(), prof, 3)
	// Advance ~10 ms of virtual time.
	ms := int64(p.Spec.ClockGHz * 1e6)
	p.AddCycles(10 * ms)
	r := p.noise.Heartbeats
	want := prof.SCHeartbeatRate * 10
	if float64(r) < want/3 || float64(r) > want*3 {
		t.Fatalf("heartbeats = %d over 10ms, want ~%.0f", r, want)
	}
}

// TestDirtyStartVariesAcrossSeeds: without the initialization flush,
// the machine's initial cache state depends on the seed, so two runs
// of the same access stream cost differently.
func TestDirtyStartVariesAcrossSeeds(t *testing.T) {
	cost := func(seed uint64) int64 {
		prof := ProfileSanity()
		prof.FlushAtStart = false
		prof.SCHeartbeatRate = 0
		prof.BusResidual = 0
		p := MustNewPlatform(Optiplex9020(), prof, seed)
		p.Initialize()
		start := p.Cycles()
		for i := int64(0); i < 4000; i++ {
			p.Access(i*64%(1<<19), 8, false)
		}
		return p.Cycles() - start
	}
	varied := false
	base := cost(1)
	for s := uint64(2); s < 6; s++ {
		if cost(s) != base {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("dirty start produced identical costs across seeds")
	}
}
