package calib

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// FileName is the calibration artifact stored in a corpus directory,
// next to the store's manifest.json: a calibration computed once ships
// with the corpus.
const FileName = "calib.json"

// Version is the artifact schema version. Readers reject artifacts
// from a different schema instead of misinterpreting them.
const Version = 1

// Set is a collection of fitted machine-pair models — the auditor's
// whole calibration state, and the unit of persistence.
type Set struct {
	Version int     `json:"version"`
	Models  []Model `json:"models"`
}

// NewSet returns an empty current-version set.
func NewSet() *Set { return &Set{Version: Version} }

// Add inserts a model, replacing any previous fit for the same
// program and directed pair.
func (s *Set) Add(m *Model) {
	for i := range s.Models {
		if s.Models[i].Program == m.Program && s.Models[i].Recorded == m.Recorded && s.Models[i].Auditor == m.Auditor {
			s.Models[i] = *m
			return
		}
	}
	s.Models = append(s.Models, *m)
}

// Lookup finds the model for auditing `program` logs across the
// directed pair (recorded -> auditor), or nil when that combination
// was never calibrated. Models are program-scoped (see Model), so a
// fit for one program never silently covers another.
func (s *Set) Lookup(program, recorded, auditor string) *Model {
	if s == nil {
		return nil
	}
	for i := range s.Models {
		if s.Models[i].Program == program && s.Models[i].Recorded == recorded && s.Models[i].Auditor == auditor {
			return &s.Models[i]
		}
	}
	return nil
}

// Save writes the set atomically (temp file, then rename) as
// dir/calib.json, models sorted by pair key so the artifact is
// byte-deterministic for a given set of fits.
func (s *Set) Save(dir string) error {
	out := Set{Version: Version, Models: append([]Model(nil), s.Models...)}
	sort.Slice(out.Models, func(i, j int) bool {
		return out.Models[i].Key() < out.Models[j].Key()
	})
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("calib: encoding artifact: %w", err)
	}
	f, err := os.CreateTemp(dir, ".calib-*")
	if err != nil {
		return fmt.Errorf("calib: writing artifact: %w", err)
	}
	defer os.Remove(f.Name())
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("calib: writing artifact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("calib: writing artifact: %w", err)
	}
	if err := os.Rename(f.Name(), filepath.Join(dir, FileName)); err != nil {
		return fmt.Errorf("calib: writing artifact: %w", err)
	}
	return nil
}

// Load reads dir/calib.json. A missing file is not an error: it loads
// as an empty set, and audits needing a pair then fail with the typed
// NoModelError, which names the fix.
func Load(dir string) (*Set, error) {
	b, err := os.ReadFile(filepath.Join(dir, FileName))
	if os.IsNotExist(err) {
		return NewSet(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("calib: reading artifact: %w", err)
	}
	var s Set
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("calib: parsing %s: %w", FileName, err)
	}
	if s.Version != Version {
		return nil, fmt.Errorf("calib: artifact version %d, want %d", s.Version, Version)
	}
	for i := range s.Models {
		if err := s.Models[i].validate(); err != nil {
			return nil, fmt.Errorf("calib: %s: %w", FileName, err)
		}
	}
	return &s, nil
}
