// Package calib makes cross-machine audits a first-class mode: it
// learns and applies time-dilation models between machine types, so a
// log recorded on a machine of type T can be audited by a verifier
// that only owns machines of type T'.
//
// This is the paper's headline deployment (§5.2, Figure 1a): the
// cloud-verification auditor replays Bob's log on whatever hardware it
// actually has. Time-deterministic replay reproduces the *instruction
// stream* exactly on any machine type, but the virtual clock advances
// at the auditor's machine's rate — so before the replayed timing can
// be compared against the recorded one, it must be mapped back into
// the recorder's timebase. Deterland (Wu & Ford, 2015) and Aviram et
// al. make the same observation: deterministic-time techniques survive
// hardware heterogeneity only with an explicit timing model between
// platforms.
//
// The model is deliberately simple and auditable: a per-machine-pair
// linear scale (fitted as the total-time ratio over known-good
// training traces replayed on both types) plus the residual spread
// left after rescaling. The scale corrects the systematic dilation;
// the spread widens the detection threshold, pricing the added
// false-positive risk of auditing across machine types instead of
// hiding it. Fitted models persist as versioned JSON artifacts next to
// a corpus manifest (see persist.go), so a calibration computed once
// ships with the corpus.
package calib

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sanity/internal/core"
	"sanity/internal/detect"
	"sanity/internal/svm"
)

// ErrNoModel is the sentinel matched by errors.Is when an audit needs
// a machine-pair calibration that was never fitted. Callers must treat
// it as "refuse the audit", never as "assume scale 1": an uncalibrated
// cross-machine comparison produces silent garbage verdicts.
var ErrNoModel = errors.New("calib: no calibration model for machine pair")

// NoModelError is the typed form of ErrNoModel, carrying the pair the
// auditor asked for. It unwraps to ErrNoModel.
type NoModelError struct {
	// Program is the audited program the model would apply to.
	Program string
	// Recorded is the machine type the shard was recorded on.
	Recorded string
	// Auditor is the machine type the auditor replays on.
	Auditor string
}

// Error implements error.
func (e *NoModelError) Error() string {
	return fmt.Sprintf("calib: no calibration model for auditing %s shards recorded on %q with a %q auditor (run `tdraudit calibrate` first)", e.Program, e.Recorded, e.Auditor)
}

// Unwrap makes errors.Is(err, ErrNoModel) hold.
func (e *NoModelError) Unwrap() error { return ErrNoModel }

// Model is one fitted time-dilation model for a program on the
// directed machine pair (Recorded -> Auditor): replaying a
// Recorded-type log of Program on an Auditor-type machine, multiplying
// replayed timings by Scale maps them back onto the Recorded timebase
// to within the residual envelope. Models are scoped per program, not
// just per machine pair, because the residual envelope is
// program-dependent — a storage-heavy server and a compute-only one
// diverge across machine types in very different ways — and applying
// one program's envelope to another would either flag benign traffic
// or hide real delays.
type Model struct {
	// Program names the audited software the model was fitted on.
	Program string `json:"program"`
	// Recorded is the machine type the audited logs were recorded on.
	Recorded string `json:"recorded"`
	// Auditor is the machine type the replays run on.
	Auditor string `json:"auditor"`

	// Scale is the fitted dilation factor: recorded-time ≈ Scale ×
	// auditor-replay-time. Fitted as the pooled total-time ratio over
	// the training traces.
	Scale float64 `json:"scale"`
	// ScaleLow and ScaleHigh bound the per-trace scale estimates — a
	// cheap confidence interval on the fit. A wide band means the pair
	// does not dilate linearly and the model should not be trusted.
	ScaleLow  float64 `json:"scaleLow"`
	ScaleHigh float64 `json:"scaleHigh"`

	// The residual left after rescaling decomposes into two physical
	// components, fitted as the envelope |error| <= AbsSpreadPs +
	// ResidualSpread × IPD over every training pair:
	//
	//   - ResidualSpread is the relative component, estimated on the
	//     idle-dominated (large) IPDs where poll-loop time dilation is
	//     almost perfectly linear. Audits widen their suspicion
	//     threshold by Slack() (derived from it).
	//
	//   - AbsSpreadPs is the absolute component: compute-dominated
	//     divergence (cache geometry and DRAM cost differences between
	//     the machine types) that does not scale with the IPD. A
	//     back-to-back send pair is microseconds apart; a sub-µs
	//     modelling error there is an enormous *relative* deviation but
	//     carries no evidence of an adversary. Audits forgive
	//     AbsSlackPs() per IPD before computing relative deviations.
	//
	// Together they are the added false-positive / false-negative
	// trade of cross-machine auditing, which the crossmachine
	// experiment quantifies.
	ResidualSpread float64 `json:"residualSpread"`
	AbsSpreadPs    int64   `json:"absSpreadPs"`
	// ResidualMean averages the raw per-IPD relative residuals over
	// all training pairs.
	ResidualMean float64 `json:"residualMean"`

	// TrainingTraces and TrainingIPDs record how much data the fit saw.
	TrainingTraces int `json:"trainingTraces"`
	TrainingIPDs   int `json:"trainingIPDs"`
}

// The margins widen the observed training spreads before they are
// applied to a detection threshold: test traces draw fresh workload
// and noise seeds, so their residuals can land past the training
// maximum (deeper queues for the absolute component, longer idle runs
// for the relative one). The margins trade a little detection
// sensitivity — delays below margin × spread hide in the calibration
// noise — for cross-machine false positives.
const (
	slackMargin    = 1.5
	absSlackMargin = 2
)

// Slack is the amount a cross-machine audit adds to its TDR suspicion
// threshold: the relative training residual spread with a safety
// margin.
func (m *Model) Slack() float64 { return m.ResidualSpread * slackMargin }

// AbsSlackPs is the per-IPD absolute allowance a calibrated
// comparison forgives: the absolute training spread with a safety
// margin.
func (m *Model) AbsSlackPs() int64 { return m.AbsSpreadPs * absSlackMargin }

// Calibration renders the model as the core comparison calibration.
func (m *Model) Calibration() core.Calibration {
	return core.Calibration{Scale: m.Scale, AbsSlackPs: m.AbsSlackPs()}
}

// Key names the model's scope in artifacts and logs.
func (m *Model) Key() string { return m.Program + ":" + m.Recorded + "->" + m.Auditor }

// validate rejects a model no audit should trust: non-finite or
// non-positive scale, negative spreads, or a missing scope. Load
// applies it so a hand-edited or corrupted artifact is refused instead
// of silently degrading to an identity calibration.
func (m *Model) validate() error {
	if m.Program == "" || m.Recorded == "" || m.Auditor == "" {
		return fmt.Errorf("calib: model %q names no program or machine pair", m.Key())
	}
	if !(m.Scale > 0) || math.IsInf(m.Scale, 0) {
		return fmt.Errorf("calib: model %s has invalid scale %v", m.Key(), m.Scale)
	}
	if !(m.ScaleLow >= 0) || math.IsInf(m.ScaleLow, 0) || !(m.ScaleHigh >= 0) || math.IsInf(m.ScaleHigh, 0) {
		return fmt.Errorf("calib: model %s has invalid confidence band [%v, %v]", m.Key(), m.ScaleLow, m.ScaleHigh)
	}
	if !(m.ResidualSpread >= 0) || math.IsInf(m.ResidualSpread, 0) || m.AbsSpreadPs < 0 {
		return fmt.Errorf("calib: model %s has invalid residual envelope (%v, %d ps)", m.Key(), m.ResidualSpread, m.AbsSpreadPs)
	}
	return nil
}

// Fit learns the time-dilation model for auditing `recorded`-type logs
// on the machine type of auditorCfg. Every training trace must be
// known-good material recorded on the `recorded` machine type, with
// its log and observed execution attached; Fit replays each log under
// the auditor configuration (hook forcibly cleared) and fits the
// recorded-vs-replayed timing relation:
//
//	scale     = Σ recorded-IPD / Σ replayed-IPD  (pooled total ratio)
//	residuals = per-IPD relative deviation after rescaling
//
// A training trace whose replay diverges functionally is rejected —
// it was not recorded from the known-good binary, and fitting a
// timing model to it would calibrate the detector against compromised
// behavior.
func Fit(prog *svm.Program, auditorCfg core.Config, recorded string, training []*detect.Trace) (*Model, error) {
	if len(training) == 0 {
		return nil, fmt.Errorf("calib: fitting %s->%s needs at least one training trace", recorded, auditorCfg.Machine.Name)
	}
	if auditorCfg.Machine.Name == "" {
		return nil, fmt.Errorf("calib: auditor config names no machine type")
	}
	auditorCfg.Hook = nil
	m := &Model{
		Program:  prog.Name,
		Recorded: recorded,
		Auditor:  auditorCfg.Machine.Name,
		ScaleLow: -1,
	}
	// Pass 1: replay every training trace on the auditor machine and
	// pool the timing pairs.
	type pairs struct{ play, replay []int64 }
	var all []pairs
	var sumPlay, sumReplay float64
	for i, tr := range training {
		if tr == nil || tr.Log == nil || tr.Play == nil {
			return nil, fmt.Errorf("calib: training trace %d has no log or observed execution", i)
		}
		if tr.Log.Machine != recorded {
			return nil, fmt.Errorf("calib: training trace %d was recorded on %q, want %q", i, tr.Log.Machine, recorded)
		}
		replay, err := core.ReplayTDR(prog, tr.Log, auditorCfg)
		if err != nil {
			return nil, fmt.Errorf("calib: training trace %d: %w", i, err)
		}
		cmp, err := core.Compare(tr.Play, replay)
		if err != nil {
			return nil, err
		}
		if !cmp.OutputsMatch {
			return nil, fmt.Errorf("calib: training trace %d diverged functionally at output %d — not recorded from the known-good binary", i, cmp.MismatchAt)
		}
		p := pairs{play: tr.Play.OutputIPDs(), replay: replay.OutputIPDs()}
		var playTotal, replayTotal float64
		for j := range p.play {
			playTotal += float64(p.play[j])
			replayTotal += float64(p.replay[j])
		}
		if replayTotal <= 0 || playTotal <= 0 {
			return nil, fmt.Errorf("calib: training trace %d has no usable inter-packet delays", i)
		}
		perTrace := playTotal / replayTotal
		if m.ScaleLow < 0 || perTrace < m.ScaleLow {
			m.ScaleLow = perTrace
		}
		if perTrace > m.ScaleHigh {
			m.ScaleHigh = perTrace
		}
		sumPlay += playTotal
		sumReplay += replayTotal
		all = append(all, p)
		m.TrainingTraces++
		m.TrainingIPDs += len(p.play)
	}
	m.Scale = sumPlay / sumReplay
	// Pass 2: residuals of the pooled fit, decomposed into the
	// two-component envelope |error| <= AbsSpreadPs + ResidualSpread×IPD.
	type residual struct {
		playPs  int64
		errorPs int64
	}
	var residuals []residual
	var magnitudes []int64
	var sum float64
	for _, p := range all {
		for j := range p.play {
			scaled := int64(float64(p.replay[j])*m.Scale + 0.5)
			e := scaled - p.play[j]
			if e < 0 {
				e = -e
			}
			residuals = append(residuals, residual{playPs: p.play[j], errorPs: e})
			magnitudes = append(magnitudes, p.play[j])
			if p.play[j] > 0 {
				sum += float64(e) / float64(p.play[j])
			}
		}
	}
	// Relative component: fitted on the idle-dominated (above-median)
	// IPDs, where time dilation is almost perfectly linear.
	sort.Slice(magnitudes, func(i, j int) bool { return magnitudes[i] < magnitudes[j] })
	median := magnitudes[len(magnitudes)/2]
	for _, r := range residuals {
		if r.playPs >= median && r.playPs > 0 {
			if d := float64(r.errorPs) / float64(r.playPs); d > m.ResidualSpread {
				m.ResidualSpread = d
			}
		}
	}
	// Absolute component: whatever the relative envelope leaves
	// unexplained on any pair (compute-dominated, small-IPD divergence).
	for _, r := range residuals {
		if a := r.errorPs - int64(m.ResidualSpread*float64(r.playPs)); a > m.AbsSpreadPs {
			m.AbsSpreadPs = a
		}
	}
	if m.TrainingIPDs > 0 {
		m.ResidualMean = sum / float64(m.TrainingIPDs)
	}
	return m, nil
}
