package calib_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sanity/internal/calib"
	"sanity/internal/covert"
	"sanity/internal/detect"
	"sanity/internal/fixtures"
	"sanity/internal/hw"
	"sanity/internal/pipeline"
	"sanity/internal/store"
)

// fitNFS fits the Optiplex->SlowerT model once per test binary.
func fitNFS(t *testing.T) *calib.Model {
	t.Helper()
	mod, err := fixtures.CalibratePair("nfsd", hw.Optiplex9020(), hw.SlowerT(), 2, 60, 42)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// TestFitRecoversClockDilation: the dominant cross-machine effect is
// the clock ratio, so the fitted scale must land near
// PsPerCycle(T)/PsPerCycle(T'), with a tight per-trace band and a
// small residual spread — the signature of a genuinely linear
// dilation.
func TestFitRecoversClockDilation(t *testing.T) {
	if testing.Short() {
		t.Skip("played traces in -short mode")
	}
	mod := fitNFS(t)
	ideal := float64(hw.Optiplex9020().PsPerCycle()) / float64(hw.SlowerT().PsPerCycle())
	if mod.Scale < ideal*0.95 || mod.Scale > ideal*1.05 {
		t.Fatalf("scale %.4f, want within 5%% of clock ratio %.4f", mod.Scale, ideal)
	}
	if mod.ScaleLow > mod.Scale || mod.Scale > mod.ScaleHigh {
		t.Fatalf("confidence band [%f, %f] does not bracket scale %f", mod.ScaleLow, mod.ScaleHigh, mod.Scale)
	}
	if mod.ResidualSpread <= 0 || mod.ResidualSpread > 0.05 {
		t.Fatalf("residual spread %.4f outside (0, 0.05]", mod.ResidualSpread)
	}
	if mod.Slack() <= mod.ResidualSpread {
		t.Fatalf("slack %.4f must exceed the raw spread %.4f", mod.Slack(), mod.ResidualSpread)
	}
	if mod.TrainingTraces != 2 || mod.TrainingIPDs == 0 {
		t.Fatalf("training accounting: %+v", mod)
	}

	// The fit is a pure function of its inputs: fitting again must
	// reproduce the model bit for bit (the calibration artifact is
	// byte-deterministic).
	again := fitNFS(t)
	if !reflect.DeepEqual(mod, again) {
		t.Fatalf("fit is nondeterministic:\n%+v\n%+v", mod, again)
	}
}

// TestCalibratedVerdicts: with the fitted model, a calibrated TDR
// detector must keep fresh benign traces under the widened threshold
// and keep covert traces far above it — same verdicts as the
// same-machine audit.
func TestCalibratedVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("played traces in -short mode")
	}
	mod := fitNFS(t)
	cfg := fixtures.ServerConfig(990)
	cfg.Machine = hw.SlowerT()
	d := detect.NewCalibratedTDR(fixtures.ServerProgram(), cfg, mod.Calibration())
	limit := 0.05 + mod.Slack()

	for i := 0; i < 3; i++ {
		tr, err := fixtures.PlayTrace(60, 7000+uint64(i)*37, 7002+uint64(i)*37, nil)
		if err != nil {
			t.Fatal(err)
		}
		s, err := d.Score(tr)
		if err != nil {
			t.Fatal(err)
		}
		if s > limit {
			t.Errorf("benign trace %d: calibrated score %.4f above widened threshold %.4f", i, s, limit)
		}
	}

	var pooled []int64
	for i := 0; i < 4; i++ {
		tr, err := fixtures.PlayTrace(60, 8000+uint64(i)*37, 8002+uint64(i)*37, nil)
		if err != nil {
			t.Fatal(err)
		}
		pooled = append(pooled, tr.IPDs...)
	}
	chans, err := covert.All(pooled, 5)
	if err != nil {
		t.Fatal(err)
	}
	ch := chans[0] // IPCTC
	tr, err := fixtures.PlayTrace(60, 9100, 9102, ch.Hook(covert.RandomBits(60, 9)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.Score(tr)
	if err != nil {
		t.Fatal(err)
	}
	if s < limit*2 {
		t.Fatalf("covert %s trace: calibrated score %.4f not clearly above threshold %.4f", ch.Name(), s, limit)
	}
}

// TestFitRejectsBadTraining: traces without replay material, traces
// recorded on a different machine than claimed, and logs from a
// different program must all be refused.
func TestFitRejectsBadTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("played traces in -short mode")
	}
	cfg := fixtures.ServerConfig(1)
	cfg.Machine = hw.SlowerT()

	if _, err := calib.Fit(fixtures.ServerProgram(), cfg, hw.Optiplex9020().Name, nil); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := calib.Fit(fixtures.ServerProgram(), cfg, hw.Optiplex9020().Name,
		[]*detect.Trace{{IPDs: []int64{1, 2, 3}}}); err == nil {
		t.Fatal("log-less training trace accepted")
	}

	tr, err := fixtures.PlayTrace(40, 11, 12, nil) // recorded on optiplex9020
	if err != nil {
		t.Fatal(err)
	}
	if _, err := calib.Fit(fixtures.ServerProgram(), cfg, hw.SlowerT().Name, []*detect.Trace{tr}); err == nil {
		t.Fatal("machine-mismatched training trace accepted")
	}
	if _, err := calib.Fit(fixtures.EchoProgram(), cfg, hw.Optiplex9020().Name, []*detect.Trace{tr}); err == nil {
		t.Fatal("wrong-program training trace accepted")
	}
}

// TestPersistRoundTrip: Save/Load reproduces the set, Add replaces
// same-pair fits, a missing artifact loads as an empty set, and a
// version skew is rejected.
func TestPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := calib.NewSet()
	s.Add(&calib.Model{Program: "nfsd", Recorded: "a", Auditor: "b", Scale: 2, ResidualSpread: 0.01, TrainingTraces: 3})
	s.Add(&calib.Model{Program: "nfsd", Recorded: "b", Auditor: "a", Scale: 0.5, ResidualSpread: 0.02, TrainingTraces: 3})
	s.Add(&calib.Model{Program: "nfsd", Recorded: "a", Auditor: "b", Scale: 3, ResidualSpread: 0.015, TrainingTraces: 5})
	// Same machine pair, different program: a distinct model, never an
	// overwrite — the residual envelope is program-dependent.
	s.Add(&calib.Model{Program: "echod", Recorded: "a", Auditor: "b", Scale: 2.1, ResidualSpread: 0.001, TrainingTraces: 3})
	if len(s.Models) != 3 {
		t.Fatalf("Add collapsed program-scoped fits: %d models", len(s.Models))
	}
	if got := s.Lookup("nfsd", "a", "b"); got == nil || got.Scale != 3 {
		t.Fatalf("Lookup(nfsd,a,b) = %+v", got)
	}
	if got := s.Lookup("echod", "a", "b"); got == nil || got.Scale != 2.1 {
		t.Fatalf("Lookup(echod,a,b) = %+v", got)
	}
	if s.Lookup("nfsd", "b", "c") != nil || s.Lookup("httpd", "a", "b") != nil {
		t.Fatal("Lookup invented a model")
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := calib.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Version != calib.Version || len(loaded.Models) != 3 {
		t.Fatalf("loaded %+v", loaded)
	}
	if got := loaded.Lookup("nfsd", "b", "a"); got == nil || got.Scale != 0.5 {
		t.Fatalf("round-tripped Lookup(nfsd,b,a) = %+v", got)
	}

	empty, err := calib.Load(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Models) != 0 {
		t.Fatalf("missing artifact loaded %d models", len(empty.Models))
	}

	if err := os.WriteFile(filepath.Join(dir, calib.FileName), []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := calib.Load(dir); err == nil {
		t.Fatal("version-skewed artifact accepted")
	}

	// A structurally valid artifact carrying a poisoned model (zero
	// scale would silently degrade to an identity calibration) must be
	// refused at load, not applied.
	bad := `{"version":1,"models":[{"program":"nfsd","recorded":"a","auditor":"b","scale":0}]}`
	if err := os.WriteFile(filepath.Join(dir, calib.FileName), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := calib.Load(dir); err == nil {
		t.Fatal("zero-scale model accepted")
	}
}

// TestUncalibratedAuditRefused: building a store-backed batch for a
// machine pair with no fitted model must fail with the typed
// calib.ErrNoModel — never fall back to an uncalibrated comparison
// that would produce silent garbage verdicts.
func TestUncalibratedAuditRefused(t *testing.T) {
	set, err := fixtures.SyntheticSet(fixtures.SetSizes{Training: 2, Benign: 2, Covert: 1, Packets: 220}, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fixtures.ExportSet(st, set, fixtures.NFSShardMeta(7)); err != nil {
		t.Fatal(err)
	}
	// The corpus is recorded on optiplex9020; the auditor owns only
	// slower-t-prime and has no calibration artifact.
	_, err = pipeline.BatchFromStore(st, fixtures.CalibratedResolver(hw.SlowerT(), calib.NewSet()))
	if !errors.Is(err, calib.ErrNoModel) {
		t.Fatalf("uncalibrated cross-machine audit error = %v, want ErrNoModel", err)
	}
	var typed *calib.NoModelError
	if !errors.As(err, &typed) || typed.Recorded != hw.Optiplex9020().Name || typed.Auditor != hw.SlowerT().Name {
		t.Fatalf("errors.As lost the pair: %v", err)
	}

	// A model for the pair but the wrong program is still a refusal.
	models := calib.NewSet()
	models.Add(&calib.Model{Program: "echod", Recorded: hw.Optiplex9020().Name, Auditor: hw.SlowerT().Name, Scale: 0.645})
	_, err = pipeline.BatchFromStore(st, fixtures.CalibratedResolver(hw.SlowerT(), models))
	if !errors.Is(err, calib.ErrNoModel) {
		t.Fatalf("wrong-program model error = %v, want ErrNoModel", err)
	}

	// With the right program's model in place the same batch builds.
	models.Add(&calib.Model{Program: "nfsd", Recorded: hw.Optiplex9020().Name, Auditor: hw.SlowerT().Name, Scale: 0.645})
	if _, err := pipeline.BatchFromStore(st, fixtures.CalibratedResolver(hw.SlowerT(), models)); err != nil {
		t.Fatal(err)
	}
}

// TestNoModelErrorTyped: the refusal is matchable both as the sentinel
// and as the typed error carrying the pair.
func TestNoModelErrorTyped(t *testing.T) {
	var err error = &calib.NoModelError{Program: "nfsd", Recorded: "t", Auditor: "t-prime"}
	if !errors.Is(err, calib.ErrNoModel) {
		t.Fatal("NoModelError does not unwrap to ErrNoModel")
	}
	var typed *calib.NoModelError
	if !errors.As(err, &typed) || typed.Program != "nfsd" || typed.Recorded != "t" || typed.Auditor != "t-prime" {
		t.Fatalf("errors.As lost the scope: %+v", typed)
	}
}
