package netsim

import (
	"testing"

	"sanity/internal/core"
	"sanity/internal/hw"
	"sanity/internal/stats"
)

func TestPaperJitterPercentiles(t *testing.T) {
	jm := PaperJitter()
	rng := hw.NewRNG(1)
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = float64(jm.Sample(rng)) / float64(Ms)
	}
	p50 := stats.Percentile(samples, 0.50)
	p90 := stats.Percentile(samples, 0.90)
	p99 := stats.Percentile(samples, 0.99)
	// Paper: 0.18 / 0.80 / 3.91 ms.
	if p50 < 0.14 || p50 > 0.23 {
		t.Fatalf("p50 jitter %.3f ms, want ~0.18", p50)
	}
	if p90 < 0.65 || p90 > 0.95 {
		t.Fatalf("p90 jitter %.3f ms, want ~0.80", p90)
	}
	if p99 < 3.0 || p99 > 4.8 {
		t.Fatalf("p99 jitter %.3f ms, want ~3.91", p99)
	}
}

func TestJitterNonNegative(t *testing.T) {
	jm := PaperJitter()
	rng := hw.NewRNG(2)
	for i := 0; i < 10000; i++ {
		if jm.Sample(rng) < 0 {
			t.Fatal("negative jitter")
		}
	}
}

func TestJitterPercentileEval(t *testing.T) {
	jm := PaperJitter()
	if got := jm.Percentile(0.5); got != int64(0.18*float64(Ms)) {
		t.Fatalf("model p50 = %d ps", got)
	}
	if jm.Percentile(0.99) != int64(3.91*float64(Ms)) {
		t.Fatal("model p99 wrong")
	}
}

func TestBroadbandJitterHigher(t *testing.T) {
	if BroadbandJitter().Percentile(0.5) <= PaperJitter().Percentile(0.5) {
		t.Fatal("broadband median jitter should exceed university link")
	}
}

func TestPathDelayExceedsPropagation(t *testing.T) {
	p := PaperPath(3)
	for i := 0; i < 100; i++ {
		if d := p.Delay(); d < p.OneWayPs {
			t.Fatalf("delay %d below propagation %d", d, p.OneWayPs)
		}
	}
}

func TestThinkTimeScheduleMonotone(t *testing.T) {
	m := DefaultThinkTime()
	sched := m.Schedule(500, hw.NewRNG(4))
	for i := 1; i < len(sched); i++ {
		if sched[i] <= sched[i-1] {
			t.Fatalf("schedule not strictly increasing at %d", i)
		}
	}
}

func TestThinkTimeMedianNearTarget(t *testing.T) {
	m := DefaultThinkTime()
	sched := m.Schedule(3000, hw.NewRNG(5))
	gaps := make([]float64, len(sched)-1)
	for i := 1; i < len(sched); i++ {
		gaps[i-1] = float64(sched[i]-sched[i-1]) / float64(Ms)
	}
	med := stats.Median(gaps)
	// Target is the paper's ~7.4 ms median IPD; the processing time on
	// the server adds little, so the think-time median should be in
	// that neighborhood.
	if med < 4.5 || med > 11 {
		t.Fatalf("median think gap %.2f ms, want ~6-8", med)
	}
}

func TestThinkTimeBursty(t *testing.T) {
	m := DefaultThinkTime()
	sched := m.Schedule(3000, hw.NewRNG(6))
	gaps := make([]float64, len(sched)-1)
	for i := 1; i < len(sched); i++ {
		gaps[i-1] = float64(sched[i] - sched[i-1])
	}
	// Bursty traffic: the coefficient of variation must be
	// substantial (legitimate traffic has high variability, §5.1).
	cv := stats.StdDev(gaps) / stats.Mean(gaps)
	if cv < 0.5 {
		t.Fatalf("traffic not bursty: cv = %.3f", cv)
	}
}

func TestToServerInputsMonotone(t *testing.T) {
	w := &Workload{
		Requests:   [][]byte{{1}, {2}, {3}, {4}},
		Departures: []int64{0, Ms, 2 * Ms, 3 * Ms},
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	inputs := w.ToServerInputs(PaperPath(7), 100*Ms)
	for i := 1; i < len(inputs); i++ {
		if inputs[i].ArrivalPs < inputs[i-1].ArrivalPs {
			t.Fatalf("arrivals reordered at %d", i)
		}
	}
	if inputs[0].ArrivalPs < 100*Ms+5*Ms {
		t.Fatalf("arrival %d before start+propagation", inputs[0].ArrivalPs)
	}
}

func TestValidateCatchesBadWorkload(t *testing.T) {
	w := &Workload{Requests: [][]byte{{1}}, Departures: []int64{0, 1}}
	if err := w.Validate(); err == nil {
		t.Fatal("length mismatch accepted")
	}
	w2 := &Workload{Requests: [][]byte{{1}, {2}}, Departures: []int64{5, 1}}
	if err := w2.Validate(); err == nil {
		t.Fatal("non-monotone departures accepted")
	}
}

func TestDeliverToClientMonotone(t *testing.T) {
	outs := []core.OutputEvent{{TimePs: 0}, {TimePs: Ms}, {TimePs: 2 * Ms}}
	at := DeliverToClient(outs, PaperPath(8))
	for i := 1; i < len(at); i++ {
		if at[i] < at[i-1] {
			t.Fatal("client arrivals reordered")
		}
	}
}
