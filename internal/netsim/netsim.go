// Package netsim models the wide-area network between the NFS client
// and server in the paper's covert-channel experiments (§6.6): the
// two endpoints sat at different U.S. East Coast universities with an
// RTT of ~10 ms and measured one-way jitter percentiles of 0.18 ms
// (p50), 0.80 ms (p90), and 3.91 ms (p99). The jitter model here is
// an inverse-CDF interpolation calibrated to exactly those points, so
// the §6.9 noise-vs-jitter comparison carries over.
package netsim

import (
	"fmt"
	"math"
	"sort"

	"sanity/internal/core"
	"sanity/internal/hw"
)

// Ms is one millisecond in picoseconds, the time unit of the engine.
const Ms = int64(1_000_000_000)

// JitterModel samples one-way network jitter via piecewise log-linear
// inverse-CDF interpolation through calibrated percentile points.
type JitterModel struct {
	// ps and qs are the calibration points: quantile -> jitter (ps).
	qs []float64
	ps []float64
}

// PaperJitter returns the jitter model calibrated to the paper's
// measured percentiles between two well-provisioned universities.
func PaperJitter() *JitterModel {
	return NewJitterModel(map[float64]float64{
		0.50:  0.18,
		0.90:  0.80,
		0.99:  3.91,
		0.999: 8.0,
	})
}

// BroadbandJitter models a residential broadband path, whose median
// jitter the paper cites as ~2.5 ms (Dischinger et al.).
func BroadbandJitter() *JitterModel {
	return NewJitterModel(map[float64]float64{
		0.50:  2.5,
		0.90:  7.0,
		0.99:  20.0,
		0.999: 45.0,
	})
}

// NewJitterModel builds a model from quantile -> jitter-in-ms points.
// The (0, 0) anchor is implicit and a final point is extrapolated.
func NewJitterModel(points map[float64]float64) *JitterModel {
	m := &JitterModel{}
	qs := make([]float64, 0, len(points))
	for q := range points {
		qs = append(qs, q)
	}
	sort.Float64s(qs)
	m.qs = append(m.qs, 0)
	m.ps = append(m.ps, 0)
	for _, q := range qs {
		m.qs = append(m.qs, q)
		m.ps = append(m.ps, points[q]*float64(Ms))
	}
	// Tail anchor: double the last jitter at quantile 1.
	m.qs = append(m.qs, 1.0)
	m.ps = append(m.ps, m.ps[len(m.ps)-1]*2)
	return m
}

// Sample draws one jitter value in picoseconds.
func (m *JitterModel) Sample(rng *hw.RNG) int64 {
	u := rng.Float64()
	for i := 1; i < len(m.qs); i++ {
		if u <= m.qs[i] {
			span := m.qs[i] - m.qs[i-1]
			frac := 0.0
			if span > 0 {
				frac = (u - m.qs[i-1]) / span
			}
			return int64(m.ps[i-1] + frac*(m.ps[i]-m.ps[i-1]))
		}
	}
	return int64(m.ps[len(m.ps)-1])
}

// Percentile evaluates the model's jitter at quantile q, for reports.
func (m *JitterModel) Percentile(q float64) int64 {
	for i := 1; i < len(m.qs); i++ {
		if q <= m.qs[i] {
			span := m.qs[i] - m.qs[i-1]
			frac := 0.0
			if span > 0 {
				frac = (q - m.qs[i-1]) / span
			}
			return int64(m.ps[i-1] + frac*(m.ps[i]-m.ps[i-1]))
		}
	}
	return int64(m.ps[len(m.ps)-1])
}

// Path is a one-way network path: fixed propagation delay plus
// sampled jitter.
type Path struct {
	OneWayPs int64
	Jitter   *JitterModel
	rng      *hw.RNG
}

// PaperPath models the inter-university link: 10 ms RTT, paper jitter.
func PaperPath(seed uint64) *Path {
	return &Path{OneWayPs: 5 * Ms, Jitter: PaperJitter(), rng: hw.NewRNG(seed)}
}

// NewPath builds a path with the given one-way delay and jitter model.
func NewPath(oneWayPs int64, jm *JitterModel, seed uint64) *Path {
	return &Path{OneWayPs: oneWayPs, Jitter: jm, rng: hw.NewRNG(seed)}
}

// Delay samples the one-way delay for one packet.
func (p *Path) Delay() int64 {
	return p.OneWayPs + p.Jitter.Sample(p.rng)
}

// ThinkTimeModel generates client think times between requests. The
// legitimate NFS traffic in the paper is bursty ("high variability"),
// which is what defeats the regularity test's assumptions; the model
// mixes short intra-burst gaps with longer pauses.
type ThinkTimeModel struct {
	// BurstGapPs is the median gap inside a burst; PausePs the median
	// pause between bursts; BurstLen the mean burst length.
	BurstGapPs int64
	PausePs    int64
	BurstLen   int
}

// DefaultThinkTime targets the paper's observed median IPD of ~7.4 ms
// at the server.
func DefaultThinkTime() ThinkTimeModel {
	return ThinkTimeModel{BurstGapPs: 6 * Ms, PausePs: 22 * Ms, BurstLen: 9}
}

// Schedule generates n request departure times (client clock, ps).
func (m ThinkTimeModel) Schedule(n int, rng *hw.RNG) []int64 {
	out := make([]int64, n)
	t := int64(0)
	inBurst := 0
	for i := 0; i < n; i++ {
		var gap int64
		if inBurst > 0 {
			// Log-normal-ish spread around the burst gap.
			gap = int64(float64(m.BurstGapPs) * math.Exp(rng.Norm(0, 0.35)))
			inBurst--
		} else {
			gap = int64(float64(m.PausePs) * math.Exp(rng.Norm(0, 0.5)))
			inBurst = int(rng.Int63n(int64(m.BurstLen*2))) + 1
		}
		if gap < Ms/10 {
			gap = Ms / 10
		}
		t += gap
		out[i] = t
	}
	return out
}

// Workload describes one client session against the server.
type Workload struct {
	// Requests are the raw request payloads in order.
	Requests [][]byte
	// Departures are client-side send times (ps), same length.
	Departures []int64
}

// Validate checks internal consistency.
func (w *Workload) Validate() error {
	if len(w.Requests) != len(w.Departures) {
		return fmt.Errorf("netsim: %d requests but %d departures", len(w.Requests), len(w.Departures))
	}
	for i := 1; i < len(w.Departures); i++ {
		if w.Departures[i] < w.Departures[i-1] {
			return fmt.Errorf("netsim: departures not monotone at %d", i)
		}
	}
	return nil
}

// ToServerInputs converts the client workload into the server-side
// input schedule by pushing every request through the path. Network
// reordering is resolved FIFO (TCP-like): arrivals are forced
// monotone.
func (w *Workload) ToServerInputs(p *Path, startPs int64) []core.InputEvent {
	inputs := make([]core.InputEvent, 0, len(w.Requests))
	prev := int64(0)
	for i, req := range w.Requests {
		at := startPs + w.Departures[i] + p.Delay()
		if at < prev {
			at = prev
		}
		prev = at
		inputs = append(inputs, core.InputEvent{ArrivalPs: at, Payload: req})
	}
	return inputs
}

// DeliverToClient timestamps server outputs at the client side of the
// path, modeling what the covert channel's receiver observes.
func DeliverToClient(outputs []core.OutputEvent, p *Path) []int64 {
	out := make([]int64, len(outputs))
	prev := int64(0)
	for i, o := range outputs {
		at := o.TimePs + p.Delay()
		if at < prev {
			at = prev
		}
		prev = at
		out[i] = at
	}
	return out
}
