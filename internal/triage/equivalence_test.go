package triage_test

import (
	"math/rand"
	"testing"

	"sanity/internal/covert"
	"sanity/internal/fixtures"
	"sanity/internal/stats"
	"sanity/internal/triage"
)

// ipdSources builds the IPD corpora the equivalence property runs
// over: benign synthetic traffic, every covert fixture channel, and
// adversarial uniform-random sequences.
func ipdSources(t *testing.T, n int) map[string][]int64 {
	t.Helper()
	out := map[string][]int64{
		"benign-a": fixtures.SyntheticIPDs(n, 11),
		"benign-b": fixtures.SyntheticIPDs(n, 12),
	}
	channels, err := covert.All(fixtures.SyntheticIPDs(512, 99), 7)
	if err != nil {
		t.Fatalf("covert.All: %v", err)
	}
	for _, ch := range channels {
		out["covert-"+ch.Name()] = fixtures.SyntheticCovertIPDs(ch, n, 21)
	}
	rng := rand.New(rand.NewSource(4242))
	raw := make([]int64, n)
	for i := range raw {
		raw[i] = rng.Int63n(50_000_000_000) // up to 50ms in ps
	}
	out["uniform-random"] = raw
	return out
}

// TestStreamingCCEMatchesBatch pins the streaming detector byte-equal
// to the batch reference: for every source and window geometry, the
// per-window values the streaming CCEDetector emits must be identical
// — same windows, same float64 bits — to stats.SlidingCCE over the
// same symbol sequence under the detector's own cuts.
func TestStreamingCCEMatchesBatch(t *testing.T) {
	const q, maxM = 5, 6
	geometries := []struct{ window, step int }{
		{32, 16}, {32, 32}, {16, 4}, {48, 7}, {64, 16},
	}
	for name, ipds := range ipdSources(t, 220) {
		for _, g := range geometries {
			det := triage.NewCCEDetector(q, maxM, g.window, g.step)
			det.KeepWindows()
			for _, v := range ipds {
				det.Feed(v)
			}
			cuts := det.Cuts()
			if len(ipds) < g.window {
				if cuts != nil || len(det.WindowValues()) != 0 {
					t.Fatalf("%s w=%d s=%d: short trace produced windows", name, g.window, g.step)
				}
				continue
			}
			symbols := make([]int, len(ipds))
			for i, v := range ipds {
				symbols[i] = stats.BinIndex(cuts, float64(v))
			}
			want := stats.SlidingCCE(symbols, q, maxM, g.window, g.step)
			got := det.WindowValues()
			if len(got) != len(want) {
				t.Fatalf("%s w=%d s=%d: %d streaming windows, batch %d",
					name, g.window, g.step, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s w=%d s=%d window %d: streaming %v != batch %v",
						name, g.window, g.step, i, got[i], want[i])
				}
			}
			// The flagged window must be the (earliest) minimum-CCE one.
			bestI := 0
			for i, v := range want {
				if v < want[bestI] {
					bestI = i
				}
			}
			r := det.Result()
			if !r.Valid {
				t.Fatalf("%s: no result despite %d windows", name, len(want))
			}
			if wantFrom := bestI * g.step; r.TopWindow != [2]int{wantFrom, wantFrom + g.window} {
				t.Fatalf("%s w=%d s=%d: top window %v, want [%d,%d)",
					name, g.window, g.step, r.TopWindow, wantFrom, wantFrom+g.window)
			}
		}
	}
}

// TestStreamingCCEMatchesBatchRandomGeometry is the property sweep:
// random lengths and geometries, seeded, all byte-equal.
func TestStreamingCCEMatchesBatchRandomGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(400)
		window := 4 + rng.Intn(60)
		step := 1 + rng.Intn(window)
		ipds := make([]int64, n)
		for i := range ipds {
			ipds[i] = 1 + rng.Int63n(40_000_000_000)
		}
		det := triage.NewCCEDetector(5, 6, window, step)
		det.KeepWindows()
		for _, v := range ipds {
			det.Feed(v)
		}
		if n < window {
			if len(det.WindowValues()) != 0 {
				t.Fatalf("trial %d: short trace produced windows", trial)
			}
			continue
		}
		symbols := make([]int, n)
		for i, v := range ipds {
			symbols[i] = stats.BinIndex(det.Cuts(), float64(v))
		}
		want := stats.SlidingCCE(symbols, 5, 6, window, step)
		got := det.WindowValues()
		if len(got) != len(want) {
			t.Fatalf("trial %d (n=%d w=%d s=%d): %d windows, want %d", trial, n, window, step, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d window %d: %v != %v", trial, i, got[i], want[i])
			}
		}
	}
}
