// Package triage scores traces for covert-timing suspicion while they
// upload. It is the cheap first stage of the audit funnel: a streaming
// detector ensemble — sliding-window corrected conditional entropy,
// a regularity/oscillation test, and a frequency-domain scan — runs
// over a trace's inter-packet delays as they arrive, with bounded
// memory (one window per detector, never the whole trace), and folds
// into a single persisted Score. The store orders audit claims by
// that score, so TDR replay — the expensive last stage — is spent on
// the most suspicious traces first.
//
// Every detector here ranks; none decides. The verdicts still come
// from the full statistical + replay pipeline downstream, which is
// what keeps triaged and un-triaged audits byte-identical apart from
// ordering.
package triage

import "math"

// SchemaVersion is the Score encoding version. Version 1 is the
// initial three-detector ensemble; a trace scored under any older
// scheme (i.e. not scored at all) decodes as a nil Score and is
// treated as Neutral.
const SchemaVersion = 1

// NeutralSuspicion is the score assumed for traces that were never
// triaged — legacy corpora, disabled scoring, or traces too short for
// a single detector window. Neutral sorts below every flagged trace
// and above everything the ensemble actively cleared.
const NeutralSuspicion = 0.5

// Score is the persisted triage result for one trace.
type Score struct {
	// Schema versions the encoding (SchemaVersion when written by this
	// package).
	Schema int `json:"schema"`
	// Suspicion is the ensemble score in [0,1]: 0 = confidently
	// benign-looking, 1 = maximally channel-like. The daemon's claim
	// order is descending Suspicion.
	Suspicion float64 `json:"suspicion"`
	// PerDetector holds each detector's own score, keyed by detector
	// name — the evidence behind Suspicion, and the per-detector
	// series the ROC experiment sweeps.
	PerDetector map[string]float64 `json:"perDetector,omitempty"`
	// TopWindow is the [from,to) IPD range the highest-scoring
	// detector flagged, [0,0) when no detector produced one. The audit
	// planner's WindowAuto seeding starts its selection here.
	TopWindow [2]int `json:"topWindow"`
}

// Neutral is the score of a trace the ensemble could not assess.
func Neutral() Score {
	return Score{Schema: SchemaVersion, Suspicion: NeutralSuspicion}
}

// HasWindow reports whether the score carries a usable flagged window.
func (s Score) HasWindow() bool { return s.TopWindow[1] > s.TopWindow[0] }

// Options configures a Scorer. The zero value means "defaults",
// chosen to match the audit planner's window geometry
// (audit.DefaultAutoWindowIPDs) so a flagged window is directly
// reusable as a selection seed.
type Options struct {
	// Window is the detector window length in IPDs (default 32).
	Window int
	// Step is the sliding stride of the CCE detector (default
	// Window/2); the regularity and frequency detectors tile
	// non-overlapping windows.
	Step int
	// Q and MaxM parameterize the CCE exactly as stats.CCE does
	// (defaults 5 and 6, the audit planner's values).
	Q, MaxM int
	// Epsilon is the regularity detector's relative similarity
	// threshold between adjacent order statistics (default 0.01).
	Epsilon float64
	// FreqBins is how many DFT bins the frequency detector evaluates
	// per window (default Window/2, the full usable spectrum).
	FreqBins int
	// KeepWindows retains every CCE window value on the detector for
	// diagnostics and the streaming-vs-batch equivalence tests.
	KeepWindows bool
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 32
	}
	if o.Step <= 0 {
		o.Step = o.Window / 2
		if o.Step == 0 {
			o.Step = 1
		}
	}
	if o.Q <= 0 {
		o.Q = 5
	}
	if o.MaxM <= 0 {
		o.MaxM = 6
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 0.01
	}
	if o.FreqBins <= 0 {
		o.FreqBins = o.Window / 2
		if o.FreqBins == 0 {
			o.FreqBins = 1
		}
	}
	return o
}

// DetectorResult is one detector's contribution: a score in [0,1]
// (higher = more channel-like) and the window that earned it. Valid
// is false while the detector has not seen a complete window.
type DetectorResult struct {
	Valid     bool
	Score     float64
	TopWindow [2]int
}

// Detector is a streaming suspicion scorer. Feed is called once per
// IPD in trace order; implementations hold at most O(window) buffered
// samples. Result may be called at any point and reflects the stream
// so far.
type Detector interface {
	Name() string
	Feed(ipd int64)
	Result() DetectorResult
}

// Scorer runs the detector ensemble over one trace's IPD stream.
// A Scorer is single-trace and not safe for concurrent use; ingest
// creates one per upload.
type Scorer struct {
	dets []Detector
	n    int
}

// NewScorer builds the default ensemble: sliding-window CCE,
// regularity/oscillation, and frequency-domain detectors.
func NewScorer(o Options) *Scorer {
	o = o.withDefaults()
	cce := NewCCEDetector(o.Q, o.MaxM, o.Window, o.Step)
	if o.KeepWindows {
		cce.KeepWindows()
	}
	return &Scorer{dets: []Detector{
		cce,
		NewRegularityDetector(o.Window, o.Epsilon),
		NewFrequencyDetector(o.Window, o.FreqBins),
	}}
}

// Detectors exposes the ensemble members (for tests and diagnostics).
func (s *Scorer) Detectors() []Detector { return s.dets }

// Feed streams one IPD into every detector.
func (s *Scorer) Feed(ipd int64) {
	for _, d := range s.dets {
		d.Feed(ipd)
	}
	s.n++
}

// FeedAll streams a slice of IPDs.
func (s *Scorer) FeedAll(ipds []int64) {
	for _, v := range ipds {
		s.Feed(v)
	}
}

// benignCal is each detector's benign baseline — the mean and spread
// of its raw score over legitimate fixture traffic. The detectors
// score on incomparable scales (the regularity test swings over half
// the unit interval on benign traces alone; the frequency scan barely
// leaves [0.13, 0.35]), so Finish standardizes each raw score against
// its own baseline before combining: a detector contributes to the
// ensemble in units of "benign standard deviations above normal", not
// raw score. PerDetector keeps the raw scores — per-detector ROC
// curves are computed on uncensored rankings.
var benignCal = map[string][2]float64{
	"cce":        {0.25, 0.08},
	"regularity": {0.25, 0.16},
	"frequency":  {0.19, 0.05},
}

// ensembleWeight is each detector's share of the consensus vote. The
// CCE detector carries no vote: with no benign training available at
// ingest it self-calibrates its entropy bins per trace, which leaves
// its score near chance as a ranker on both fixture corpora — its
// contribution is the per-window evidence and the flagged window the
// audit planner seeds from, not the suspicion itself.
var ensembleWeight = map[string]float64{
	"regularity": 0.55,
	"frequency":  0.45,
}

// ensembleOverrideZ, ensembleZeroZ, and ensembleZScale shape the
// fusion. A voting detector more than overrideZ standard deviations
// alarmed can raise the ensemble on its own (at that discount) —
// which corpus-invariantly catches channels only one specialist sees,
// like the regularity test on IPCTC's constant encoding. zeroZ sits
// near the benign population's own 90th-percentile fused score, so
// legitimate traces land below NeutralSuspicion; each further zScale
// standard deviations add one unit of suspicion, saturating at 1.
const (
	ensembleOverrideZ = 1.5
	ensembleZeroZ     = 1.0
	ensembleZScale    = 4.0
)

// Finish folds the ensemble into a Score. Each detector's raw score
// is standardized against its benign baseline (benignCal), the voting
// detectors' z-scores blend by ensembleWeight into a consensus, and a
// single extremely alarmed voter can override the blend — so a trace
// is suspicious when the detectors agree it is off-baseline, or when
// one specialist is certain. A trace too short for any complete
// window gets the Neutral score.
func (s *Scorer) Finish() Score {
	sc := Score{Schema: SchemaVersion, PerDetector: make(map[string]float64, len(s.dets))}
	fused, bestZ, valid := 0.0, math.Inf(-1), false
	var overrides []float64
	for _, d := range s.dets {
		r := d.Result()
		sc.PerDetector[d.Name()] = r.Score
		if !r.Valid {
			continue
		}
		valid = true
		cal, ok := benignCal[d.Name()]
		if !ok {
			continue
		}
		z := (r.Score - cal[0]) / cal[1]
		// The flagged window follows the most alarmed detector in
		// benign-sigma units, vote or no vote — for seeding, the best
		// lead wins even when it doesn't move the suspicion.
		if z > bestZ {
			bestZ = z
			sc.TopWindow = r.TopWindow
		}
		if w := ensembleWeight[d.Name()]; w > 0 {
			fused += w * z
			overrides = append(overrides, z-ensembleOverrideZ)
		}
	}
	if !valid {
		return Neutral()
	}
	for _, o := range overrides {
		if o > fused {
			fused = o
		}
	}
	sc.Suspicion = clamp01(NeutralSuspicion + (fused-ensembleZeroZ)/ensembleZScale)
	return sc
}

// ScoreIPDs scores a complete IPD slice in one call — the backfill
// and experiment entry point. Streaming callers use NewScorer
// directly.
func ScoreIPDs(ipds []int64, o Options) Score {
	s := NewScorer(o)
	s.FeedAll(ipds)
	return s.Finish()
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}

// bandFor buckets a suspicion score for census reporting.
func bandFor(s float64) string {
	switch {
	case s > NeutralSuspicion:
		return "high"
	case s < NeutralSuspicion:
		return "low"
	}
	return "neutral"
}

// Band buckets a suspicion score into "low", "neutral", or "high" —
// the census and metrics vocabulary.
func Band(suspicion float64) string { return bandFor(suspicion) }
