package triage

import (
	"math"
	"sort"

	"sanity/internal/stats"
)

// CCEDetector is the streaming form of stats.SlidingCCE: it emits the
// corrected conditional entropy of every length-`window` symbol window
// advanced by `step`, holding only one window of state. The bin cuts
// are self-calibrated from the trace's own first window (equiprobable
// quantization, exactly as the batch detectors quantize), so ingest
// needs no per-shard training material to score an upload.
//
// Byte-equality contract: for any IPD sequence, the per-window values
// this detector computes are identical — same windows, same float64
// bits — to stats.SlidingCCE over the same symbol sequence. The
// equivalence property test pins this.
type CCEDetector struct {
	q, maxM, window, step int

	// warm buffers the first window of raw IPDs until the cuts exist;
	// after calibration it is released and only symbols are kept.
	cuts []float64
	warm []int64

	// ring holds the last `window` symbols; scratch linearizes a
	// completed window for the stats.CCE call.
	ring    []int
	scratch []int
	n       int

	keep bool
	kept []float64

	best   float64
	bestAt int
	seen   bool
}

// NewCCEDetector builds a streaming sliding-CCE detector with the
// given stats.CCE parameters and window geometry.
func NewCCEDetector(q, maxM, window, step int) *CCEDetector {
	return &CCEDetector{
		q: q, maxM: maxM, window: window, step: step,
		ring:    make([]int, window),
		scratch: make([]int, window),
		warm:    make([]int64, 0, window),
	}
}

// Name implements Detector.
func (d *CCEDetector) Name() string { return "cce" }

// KeepWindows retains every window's raw CCE value — diagnostics and
// the streaming-vs-batch equivalence tests read them back with
// WindowValues.
func (d *CCEDetector) KeepWindows() { d.keep = true }

// Cuts exposes the self-calibrated bin boundaries; nil until the
// first window completes.
func (d *CCEDetector) Cuts() []float64 { return d.cuts }

// WindowValues returns the retained per-window CCE values (only
// populated after KeepWindows).
func (d *CCEDetector) WindowValues() []float64 { return d.kept }

// Feed implements Detector.
func (d *CCEDetector) Feed(ipd int64) {
	if d.cuts == nil {
		d.warm = append(d.warm, ipd)
		if len(d.warm) < d.window {
			return
		}
		// First window complete: derive the cuts from it, then run the
		// buffered prefix through the normal symbol path.
		d.cuts = stats.EquiprobableBins(stats.Int64sToFloats(d.warm), d.q)
		for _, v := range d.warm {
			d.push(stats.BinIndex(d.cuts, float64(v)))
		}
		d.warm = nil
		return
	}
	d.push(stats.BinIndex(d.cuts, float64(ipd)))
}

func (d *CCEDetector) push(sym int) {
	d.ring[d.n%d.window] = sym
	d.n++
	if d.n < d.window || (d.n-d.window)%d.step != 0 {
		return
	}
	from := d.n - d.window
	for i := 0; i < d.window; i++ {
		d.scratch[i] = d.ring[(from+i)%d.window]
	}
	v := stats.CCE(d.scratch, d.q, d.maxM)
	if d.keep {
		d.kept = append(d.kept, v)
	}
	if !d.seen || v < d.best {
		d.best, d.bestAt, d.seen = v, from, true
	}
}

// Result implements Detector. Low conditional entropy means a regular
// symbol stream — the constant-encoding channel signature — so the
// score is the minimum window CCE normalized against the maximum
// entropy achievable at this quantization and inverted.
func (d *CCEDetector) Result() DetectorResult {
	if !d.seen {
		return DetectorResult{}
	}
	score := 1 - d.best/math.Log2(float64(d.q))
	return DetectorResult{
		Valid:     true,
		Score:     clamp01(score),
		TopWindow: [2]int{d.bestAt, d.bestAt + d.window},
	}
}

// maxRegularityWindows bounds the per-window standard deviations the
// regularity detector retains for its variance-of-window-std
// statistic; beyond it the estimate is settled and further windows
// only feed the ε-similarity scan. Keeps detector memory O(1) in the
// trace length.
const maxRegularityWindows = 512

// RegularityDetector implements the regularity/oscillation test of
// the middlebox detector ensembles (Cabuk et al.'s regularity and
// ε-similarity statistics): a shaped channel keeps its inter-packet
// delays unnaturally consistent, visible as (a) near-identical
// standard deviations across successive windows and (b) long runs of
// ε-similar adjacent order statistics within a window.
type RegularityDetector struct {
	window int
	eps    float64

	buf     []float64
	sorted  []float64
	start   int
	sigmas  []float64
	bestEps float64
	bestAt  int
	windows int
}

// NewRegularityDetector builds a regularity detector over tiled
// (non-overlapping) windows of the given length.
func NewRegularityDetector(window int, eps float64) *RegularityDetector {
	return &RegularityDetector{
		window: window,
		eps:    eps,
		buf:    make([]float64, 0, window),
		sorted: make([]float64, window),
	}
}

// Name implements Detector.
func (d *RegularityDetector) Name() string { return "regularity" }

// Feed implements Detector.
func (d *RegularityDetector) Feed(ipd int64) {
	d.buf = append(d.buf, float64(ipd))
	if len(d.buf) == d.window {
		d.flush()
	}
}

func (d *RegularityDetector) flush() {
	if len(d.sigmas) < maxRegularityWindows {
		d.sigmas = append(d.sigmas, stats.StdDev(d.buf))
	}
	// ε-similarity: the fraction of adjacent order statistics within a
	// relative eps of each other. Two-valued and tightly shaped
	// channels push this toward 1; bursty legitimate traffic spreads
	// its order statistics apart.
	copy(d.sorted, d.buf)
	sort.Float64s(d.sorted)
	similar := 0
	for i := 1; i < len(d.sorted); i++ {
		denom := math.Abs(d.sorted[i-1])
		if denom < 1 {
			denom = 1
		}
		if math.Abs(d.sorted[i]-d.sorted[i-1])/denom < d.eps {
			similar++
		}
	}
	frac := float64(similar) / float64(len(d.sorted)-1)
	if d.windows == 0 || frac > d.bestEps {
		d.bestEps, d.bestAt = frac, d.start
	}
	d.windows++
	d.start += len(d.buf)
	d.buf = d.buf[:0]
}

// Calibration of the regularity sub-scores, measured on the fixture
// corpora (window 32, ε 0.01): benign bursty traffic sits at an
// ε-similar fraction of ~0.25-0.33 and a window-σ coefficient of
// variation of ~0.34-0.44, while shaped channels push the fraction
// toward 1 (IPCTC ~0.94) and the cv toward 0 (IPCTC ~0.03, TRCTC
// ~0.24, MBCTC ~0.19). The linear maps below put benign near 0 and
// the channel signatures near 1 so the ensemble max stays meaningful
// across detectors; they rescale, not rank, so each sub-score's ROC
// is unchanged.
const (
	epsSimilarFloor = 0.25
	cvFullScale     = 0.5
)

// Result implements Detector: the larger of the best window's
// (rescaled) ε-similarity fraction and the cross-window consistency
// score 1 - cv/cvFullScale, where cv is the coefficient of variation
// of the per-window standard deviations.
func (d *RegularityDetector) Result() DetectorResult {
	if d.windows == 0 {
		return DetectorResult{}
	}
	score := clamp01((d.bestEps - epsSimilarFloor) / (1 - epsSimilarFloor))
	if len(d.sigmas) >= 2 {
		m := stats.Mean(d.sigmas)
		varScore := 1.0 // every window exactly constant
		if m > 0 {
			varScore = clamp01(1 - stats.StdDev(d.sigmas)/m/cvFullScale)
		}
		if varScore > score {
			score = varScore
		}
	}
	return DetectorResult{
		Valid:     true,
		Score:     clamp01(score),
		TopWindow: [2]int{d.bestAt, d.bestAt + d.window},
	}
}

// FrequencyDetector scans each tiled IPD window for spectral
// concentration: a Goertzel evaluation of the first `bins` DFT bins
// of the mean-removed window. A low-rate periodic channel (one
// modulated delay every k packets) concentrates its energy in a
// single bin; legitimate traffic spreads it. The score is the peak
// bin's share of the evaluated spectrum, normalized so a flat
// spectrum scores 0 and a pure tone scores 1.
type FrequencyDetector struct {
	window, bins int

	buf     []float64
	start   int
	best    float64
	bestAt  int
	windows int
}

// NewFrequencyDetector builds a frequency-domain detector over tiled
// windows, evaluating DFT bins 1..bins.
func NewFrequencyDetector(window, bins int) *FrequencyDetector {
	if bins > window/2 && window/2 > 0 {
		bins = window / 2
	}
	if bins < 1 {
		bins = 1
	}
	return &FrequencyDetector{
		window: window,
		bins:   bins,
		buf:    make([]float64, 0, window),
	}
}

// Name implements Detector.
func (d *FrequencyDetector) Name() string { return "frequency" }

// Feed implements Detector.
func (d *FrequencyDetector) Feed(ipd int64) {
	d.buf = append(d.buf, float64(ipd))
	if len(d.buf) == d.window {
		d.flush()
	}
}

func (d *FrequencyDetector) flush() {
	m := stats.Mean(d.buf)
	n := float64(len(d.buf))
	var total, peak float64
	for k := 1; k <= d.bins; k++ {
		coeff := 2 * math.Cos(2*math.Pi*float64(k)/n)
		var s1, s2 float64
		for _, x := range d.buf {
			s0 := (x - m) + coeff*s1 - s2
			s2, s1 = s1, s0
		}
		p := s1*s1 + s2*s2 - coeff*s1*s2
		if p < 0 {
			p = 0 // Goertzel rounding can dip epsilon-negative
		}
		total += p
		if p > peak {
			peak = p
		}
	}
	var score float64
	if total > 0 {
		floor := 1 / float64(d.bins)
		score = (peak/total - floor) / (1 - floor)
	}
	if d.windows == 0 || score > d.best {
		d.best, d.bestAt = score, d.start
	}
	d.windows++
	d.start += len(d.buf)
	d.buf = d.buf[:0]
}

// Result implements Detector.
func (d *FrequencyDetector) Result() DetectorResult {
	if d.windows == 0 {
		return DetectorResult{}
	}
	return DetectorResult{
		Valid:     true,
		Score:     clamp01(d.best),
		TopWindow: [2]int{d.bestAt, d.bestAt + d.window},
	}
}
