package triage_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"sanity/internal/covert"
	"sanity/internal/fixtures"
	"sanity/internal/stats"
	"sanity/internal/triage"
)

func TestShortTraceScoresNeutral(t *testing.T) {
	sc := triage.ScoreIPDs(fixtures.SyntheticIPDs(10, 3), triage.Options{Window: 32})
	if sc.Suspicion != triage.NeutralSuspicion {
		t.Fatalf("short trace suspicion %v, want neutral %v", sc.Suspicion, triage.NeutralSuspicion)
	}
	if sc.HasWindow() {
		t.Fatalf("short trace flagged window %v", sc.TopWindow)
	}
	if sc.Schema != triage.SchemaVersion {
		t.Fatalf("schema %d, want %d", sc.Schema, triage.SchemaVersion)
	}
}

func TestScorerDeterministic(t *testing.T) {
	ipds := fixtures.SyntheticIPDs(300, 5)
	a := triage.ScoreIPDs(ipds, triage.Options{})
	b := triage.ScoreIPDs(ipds, triage.Options{})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same input, different scores:\n%+v\n%+v", a, b)
	}
	if len(a.PerDetector) != 3 {
		t.Fatalf("expected 3 detector scores, got %v", a.PerDetector)
	}
}

// TestEnsembleSeparatesChannels demands real ranking power on the
// fixture corpora: the ensemble suspicion must separate each covert
// channel family from benign traffic, and pooled over every channel —
// the ranking job the daemon's priority queue actually does — it must
// do at least as well as each individual detector. Per-channel a
// specialist may beat the fusion (the regularity test on its pet
// channels, on lucky seeds); pooled, no single detector may.
func TestEnsembleSeparatesChannels(t *testing.T) {
	const n, traces = 256, 24
	channels, err := covert.All(fixtures.SyntheticIPDs(512, 77), 13)
	if err != nil {
		t.Fatalf("covert.All: %v", err)
	}
	var neg []float64
	negPer := map[string][]float64{}
	for i := 0; i < traces; i++ {
		sc := triage.ScoreIPDs(fixtures.SyntheticIPDs(n, uint64(100+i)), triage.Options{})
		neg = append(neg, sc.Suspicion)
		for d, v := range sc.PerDetector {
			negPer[d] = append(negPer[d], v)
		}
	}
	// IPCTC's constant encoding must rank far above benign; the other
	// dense channels shape their delays to mimic legitimate traffic,
	// so the bar is solid-but-not-perfect ranking; the low-rate needle
	// at its default period (one bit per 100 packets, ~2 marks in a
	// 256-packet trace) is designed to evade cheap shape tests, so the
	// bar there is "no worse than chance" — the ROC experiment's rate
	// sweep shows the detectors picking it up as its rate rises.
	minAUC := map[string]float64{"ipctc": 0.95, "trctc": 0.7, "mbctc": 0.6, "needle": 0.45}
	var poolPos []float64
	poolPer := map[string][]float64{}
	for _, ch := range channels {
		var pos []float64
		for i := 0; i < traces; i++ {
			ipds := fixtures.SyntheticCovertIPDs(ch, n, uint64(500+i))
			sc := triage.ScoreIPDs(ipds, triage.Options{})
			pos = append(pos, sc.Suspicion)
			for d, v := range sc.PerDetector {
				poolPer[d] = append(poolPer[d], v)
			}
		}
		poolPos = append(poolPos, pos...)
		if auc := stats.AUC(pos, neg); auc < minAUC[ch.Name()] {
			t.Errorf("%s: ensemble AUC %.3f < %.2f (pos %v, neg %v)", ch.Name(), auc, minAUC[ch.Name()], pos, neg)
		}
	}
	poolAUC := stats.AUC(poolPos, neg)
	for d, pos := range poolPer {
		if dauc := stats.AUC(pos, negPer[d]); dauc > poolAUC+0.02 {
			t.Errorf("pooled: detector %s AUC %.3f beats ensemble %.3f", d, dauc, poolAUC)
		}
	}
}

func TestScoreJSONRoundTrip(t *testing.T) {
	sc := triage.ScoreIPDs(fixtures.SyntheticIPDs(200, 9), triage.Options{})
	b, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	var back triage.Score
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Fatalf("round trip changed score:\n%+v\n%+v", sc, back)
	}
}

func TestBand(t *testing.T) {
	for _, c := range []struct {
		s    float64
		want string
	}{{0.1, "low"}, {triage.NeutralSuspicion, "neutral"}, {0.9, "high"}} {
		if got := triage.Band(c.s); got != c.want {
			t.Fatalf("Band(%v) = %q, want %q", c.s, got, c.want)
		}
	}
}
