// Package ringbuf implements the two in-memory ring buffers through
// which the timed core (TC) and the supporting core (SC) communicate
// (paper §3.4): the S-T buffer carries asynchronous inputs (network
// packets) from the SC to the TC, and the T-S buffer carries outputs
// and logged nondeterministic values (e.g. nanoTime results) from the
// TC to the SC.
//
// The package also implements the paper's two symmetry mechanisms
// (§3.5), which make the TC's control flow and memory accesses
// identical during play and replay:
//
//   - AccessWord is the playMask read/write-combining algorithm of
//     Figure 4: the same load-mask-or-store sequence writes the value
//     to the buffer during play (mask = all ones) and reads it from
//     the buffer during replay (mask = zero), with no branch taken.
//
//   - The S-T buffer maintains a "fake" sentinel entry whose
//     timestamp is infinity; the TC's next-entry check therefore
//     always executes the same comparison whether or not input is
//     available, and consuming an entry always reads, checks, and
//     writes the timestamp word.
//
// All TC-side operations report their word-granularity memory traffic
// through an Access callback, so the engine can charge them against
// the simulated cache hierarchy; SC-side operations are free for the
// TC (they happen on the other core) but their DMA can be modeled by
// the engine via bus-contention windows.
package ringbuf

import (
	"errors"
	"math"
)

// PlayMask is the mask value during the original execution.
const PlayMask = int64(-1)

// ReplayMask is the mask value during replay.
const ReplayMask = int64(0)

// InfTimestamp marks the fake sentinel entry at the end of the S-T
// buffer; no instruction counter ever reaches it.
const InfTimestamp = int64(math.MaxInt64)

// FreshTimestamp marks an entry the SC has just appended during play;
// the TC recognizes it and replaces it with the current instruction
// count.
const FreshTimestamp = int64(0)

// Access is the TC-side memory-charging hook: one word (8-byte)
// access at the given virtual address.
type Access func(addr int64, write bool)

// AccessWord is the symmetric read/write of paper Figure 4 on a
// buffer slot: during play (mask all ones) it stores value into the
// slot and returns value; during replay (mask zero) it returns the
// slot's current content. Both phases perform one load and one store.
func AccessWord(value int64, slot *int64, mask int64) int64 {
	temp := value & mask
	temp |= *slot &^ mask
	*slot = temp
	return temp
}

// ErrFull is returned when a producer outruns the consumer.
var ErrFull = errors.New("ringbuf: buffer full")

// ring is a fixed-capacity queue of word records.
type ring struct {
	base   int64 // virtual address of slot 0 (for access charging)
	slots  [][]int64
	head   int
	tail   int
	count  int
	access Access
}

func newRing(base int64, capacity int, access Access) *ring {
	if access == nil {
		access = func(int64, bool) {}
	}
	return &ring{base: base, slots: make([][]int64, capacity), access: access}
}

// addr returns the virtual address of word w of slot i, for charging.
// Slots are spaced a cache line apart plus payload words.
func (r *ring) addr(i, w int) int64 {
	return r.base + int64(i)*256 + int64(w)*8
}

// STEntry is one input record: a timestamp word (instruction count at
// which the TC consumed/must consume it) and a payload.
type STEntry struct {
	Timestamp int64
	Payload   []byte
}

// ST is the SC-to-TC input buffer.
type ST struct {
	r *ring
}

// NewST builds an S-T buffer with the given slot capacity. The buffer
// initially holds only the fake sentinel entry.
func NewST(base int64, capacity int, access Access) *ST {
	st := &ST{r: newRing(base, capacity, access)}
	st.scPushSentinel()
	return st
}

func (s *ST) scPushSentinel() {
	r := s.r
	r.slots[r.tail] = []int64{InfTimestamp, 0}
	r.tail = (r.tail + 1) % len(r.slots)
	r.count++
}

// SCPush appends an input entry from the supporting core. During
// play, ts must be FreshTimestamp; during replay, ts is the logged
// instruction count. Following §3.5, the SC overwrites the previous
// fake entry and appends a new one. SC-side work is not charged to
// the TC.
func (s *ST) SCPush(payload []byte, ts int64) error {
	r := s.r
	if r.count+1 > len(r.slots) {
		return ErrFull
	}
	// Overwrite the sentinel (one slot back from tail).
	idx := (r.tail - 1 + len(r.slots)) % len(r.slots)
	words := make([]int64, 2+(len(payload)+7)/8)
	words[0] = ts
	words[1] = int64(len(payload))
	packBytes(words[2:], payload)
	r.slots[idx] = words
	s.scPushSentinel()
	return nil
}

// TCPoll is the timed core's next-entry check: it reads the head
// entry's timestamp, compares it against the current instruction
// count, and either consumes the entry (writing the timestamp word
// via the symmetric access) or leaves it. The memory accesses and the
// comparison are identical whether the head is a real entry or the
// sentinel — that is the point of the protocol.
//
// now is the TC's instruction counter; mask is PlayMask or
// ReplayMask. It returns the payload and the timestamp word's final
// value (the logged delivery point), or ok == false when no entry is
// due.
func (s *ST) TCPoll(now int64, mask int64) (payload []byte, ts int64, ok bool) {
	r := s.r
	slot := r.slots[r.head]
	r.access(r.addr(r.head, 0), false) // read timestamp
	tsWord := slot[0]
	// During play a fresh entry carries FreshTimestamp (0), which the
	// TC replaces with the current count; during replay the logged
	// timestamp gates delivery. The comparison below covers both: the
	// sentinel's +inf never passes.
	if tsWord > now {
		return nil, 0, false
	}
	ts = AccessWord(now, &slot[0], mask)
	r.access(r.addr(r.head, 0), true) // timestamp write-back
	n := slot[1]
	r.access(r.addr(r.head, 1), false)
	payload = make([]byte, n)
	unpackBytes(payload, slot[2:])
	for w := 0; w < int(n+7)/8; w++ {
		r.access(r.addr(r.head, 2+w), false)
	}
	r.slots[r.head] = nil
	r.head = (r.head + 1) % len(r.slots)
	r.count--
	return payload, ts, true
}

// Pending returns the number of real (non-sentinel) entries queued.
func (s *ST) Pending() int { return s.r.count - 1 }

// TS is the TC-to-SC buffer. It carries two entry kinds: outputs
// (forwarded by the SC during play, discarded during replay) and
// events (nondeterministic values written during play and injected
// during replay via the symmetric access).
type TS struct {
	r *ring
}

// TS entry kinds.
const (
	TSOutput = int64(0)
	TSEvent  = int64(1)
)

// TSRecord is a drained T-S entry as the SC sees it.
type TSRecord struct {
	Kind    int64
	Payload []byte // outputs
	Value   int64  // events
}

// NewTS builds a T-S buffer.
func NewTS(base int64, capacity int, access Access) *TS {
	return &TS{r: newRing(base, capacity, access)}
}

// TCSendOutput appends an output record. Outputs are deterministic,
// so both play and replay perform plain writes — there is no
// asymmetry to compensate for.
func (t *TS) TCSendOutput(payload []byte) error {
	r := t.r
	if r.count >= len(r.slots) {
		return ErrFull
	}
	words := make([]int64, 2+(len(payload)+7)/8)
	words[0] = TSOutput
	words[1] = int64(len(payload))
	packBytes(words[2:], payload)
	r.slots[r.tail] = words
	r.access(r.addr(r.tail, 0), true)
	r.access(r.addr(r.tail, 1), true)
	for w := 0; w < (len(payload)+7)/8; w++ {
		r.access(r.addr(r.tail, 2+w), true)
	}
	r.tail = (r.tail + 1) % len(r.slots)
	r.count++
	return nil
}

// TCEvent records (play) or injects (replay) one nondeterministic
// value, e.g. a nanoTime result: the slot is pre-seeded by the SC
// during replay (SCPreloadEvent), and the symmetric access either
// stores the live value (play) or returns the seeded one (replay).
func (t *TS) TCEvent(value int64, mask int64) (int64, error) {
	r := t.r
	if r.count >= len(r.slots) {
		return 0, ErrFull
	}
	if r.slots[r.tail] == nil {
		r.slots[r.tail] = []int64{TSEvent, 0, 0}
	}
	slot := r.slots[r.tail]
	slot[0] = TSEvent
	slot[1] = 1
	r.access(r.addr(r.tail, 0), true)
	r.access(r.addr(r.tail, 1), true)
	r.access(r.addr(r.tail, 2), false) // symmetric access: load...
	out := AccessWord(value, &slot[2], mask)
	r.access(r.addr(r.tail, 2), true) // ...then store
	r.tail = (r.tail + 1) % len(r.slots)
	r.count++
	return out, nil
}

// SCPreloadEvent seeds the next event slot with a logged value during
// replay. The SC runs ahead of the TC, so the slot to seed is always
// the TC's next tail position offset by the number of unseeded
// entries; engines call it immediately before the TC's access.
func (t *TS) SCPreloadEvent(value int64) {
	r := t.r
	r.slots[r.tail] = []int64{TSEvent, 1, value}
}

// SCDrain removes and returns all queued records (SC side, uncharged).
func (t *TS) SCDrain() []TSRecord {
	r := t.r
	var out []TSRecord
	for r.count > 0 {
		slot := r.slots[r.head]
		rec := TSRecord{Kind: slot[0]}
		if slot[0] == TSOutput {
			rec.Payload = make([]byte, slot[1])
			unpackBytes(rec.Payload, slot[2:])
		} else {
			rec.Value = slot[2]
		}
		out = append(out, rec)
		r.slots[r.head] = nil
		r.head = (r.head + 1) % len(r.slots)
		r.count--
	}
	return out
}

// Pending returns the number of queued records.
func (t *TS) Pending() int { return t.r.count }

// RingState is a serializable snapshot of one ring's contents and
// cursors, captured at a checkpoint boundary and restored when a
// windowed replay resumes mid-stream (an input the SC pushed before
// the boundary may still be queued, unconsumed, across it).
type RingState struct {
	Head, Tail, Count int
	Slots             [][]int64 // len == capacity; nil entries are empty slots
}

// snapshot copies the ring's state. There is deliberately no inverse:
// a resumed replay never installs play-side ring *contents* (pending
// inputs are re-injected from the log at their recorded instruction
// counts); it only re-derives the cursors via AlignResume. The
// snapshot travels in checkpoints as recorded-state evidence.
func (r *ring) snapshot() RingState {
	st := RingState{Head: r.head, Tail: r.tail, Count: r.count, Slots: make([][]int64, len(r.slots))}
	for i, s := range r.slots {
		if s != nil {
			st.Slots[i] = append([]int64(nil), s...)
		}
	}
	return st
}

// State snapshots the S-T buffer.
func (s *ST) State() RingState { return s.r.snapshot() }

// State snapshots the T-S buffer.
func (t *TS) State() RingState { return t.r.snapshot() }

// AlignResume positions a fresh S-T buffer as it stands during replay
// after consumed entries have been pushed and consumed: only the
// sentinel remains, at the slot the cursor has ring-advanced to.
// Cursor positions matter beyond bookkeeping — the TC charges its
// buffer traffic at slot-dependent virtual addresses, so a resumed
// replay must touch the same addresses a full replay does.
func (s *ST) AlignResume(consumed int64) {
	r := s.r
	n := len(r.slots)
	for i := range r.slots {
		r.slots[i] = nil
	}
	idx := int(consumed % int64(n))
	r.slots[idx] = []int64{InfTimestamp, 0}
	r.head = idx
	r.tail = (idx + 1) % n
	r.count = 1
}

// AlignResume positions a fresh T-S buffer as it stands during replay
// after drained entries (outputs and events) have passed through:
// empty, with the cursors ring-advanced past them.
func (t *TS) AlignResume(drained int64) {
	r := t.r
	n := len(r.slots)
	for i := range r.slots {
		r.slots[i] = nil
	}
	idx := int(drained % int64(n))
	r.head = idx
	r.tail = idx
	r.count = 0
}

// packBytes packs b little-endian into words.
func packBytes(words []int64, b []byte) {
	for i, c := range b {
		words[i/8] |= int64(c) << (uint(i%8) * 8)
	}
}

// unpackBytes is the inverse of packBytes.
func unpackBytes(b []byte, words []int64) {
	for i := range b {
		b[i] = byte(uint64(words[i/8]) >> (uint(i%8) * 8))
	}
}
