package ringbuf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAccessWordPlayWritesValue(t *testing.T) {
	slot := int64(999)
	got := AccessWord(42, &slot, PlayMask)
	if got != 42 || slot != 42 {
		t.Fatalf("play: got %d slot %d, want 42 42", got, slot)
	}
}

func TestAccessWordReplayReadsSlot(t *testing.T) {
	slot := int64(77)
	got := AccessWord(42, &slot, ReplayMask)
	if got != 77 || slot != 77 {
		t.Fatalf("replay: got %d slot %d, want 77 77", got, slot)
	}
}

func TestAccessWordProperty(t *testing.T) {
	// For any value/slot pair, play returns value and replay returns
	// the slot, and both leave slot == result.
	f := func(value, slotInit int64) bool {
		s1 := slotInit
		p := AccessWord(value, &s1, PlayMask)
		s2 := slotInit
		r := AccessWord(value, &s2, ReplayMask)
		return p == value && s1 == value && r == slotInit && s2 == slotInit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSTEmptyPollMisses(t *testing.T) {
	st := NewST(0x9000_0000, 16, nil)
	if _, _, ok := st.TCPoll(1_000_000, PlayMask); ok {
		t.Fatal("poll on empty buffer returned an entry")
	}
}

func TestSTPlayDelivery(t *testing.T) {
	st := NewST(0x9000_0000, 16, nil)
	if err := st.SCPush([]byte("hello"), FreshTimestamp); err != nil {
		t.Fatal(err)
	}
	payload, ts, ok := st.TCPoll(12345, PlayMask)
	if !ok {
		t.Fatal("entry not delivered")
	}
	if string(payload) != "hello" {
		t.Fatalf("payload %q", payload)
	}
	if ts != 12345 {
		t.Fatalf("play timestamp = %d, want the poll instruction count", ts)
	}
	// Buffer is empty again (only the sentinel remains).
	if _, _, ok := st.TCPoll(99999, PlayMask); ok {
		t.Fatal("second poll should miss")
	}
}

func TestSTReplayGating(t *testing.T) {
	st := NewST(0x9000_0000, 16, nil)
	// Replay: the SC preloads the entry with its logged delivery
	// point; the TC must not receive it earlier.
	if err := st.SCPush([]byte("pkt"), 500); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.TCPoll(499, ReplayMask); ok {
		t.Fatal("entry delivered before its logged instruction count")
	}
	payload, ts, ok := st.TCPoll(500, ReplayMask)
	if !ok {
		t.Fatal("entry not delivered at its logged point")
	}
	if ts != 500 {
		t.Fatalf("replay timestamp = %d, want 500 (the logged value)", ts)
	}
	if string(payload) != "pkt" {
		t.Fatalf("payload %q", payload)
	}
}

func TestSTOrdering(t *testing.T) {
	st := NewST(0x9000_0000, 16, nil)
	for i := 0; i < 3; i++ {
		if err := st.SCPush([]byte{byte('a' + i)}, FreshTimestamp); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		p, _, ok := st.TCPoll(int64(1000+i), PlayMask)
		if !ok || p[0] != byte('a'+i) {
			t.Fatalf("entry %d out of order: %q ok=%v", i, p, ok)
		}
	}
}

func TestSTPendingAndOverflow(t *testing.T) {
	st := NewST(0x9000_0000, 4, nil)
	if st.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", st.Pending())
	}
	for i := 0; i < 3; i++ {
		if err := st.SCPush([]byte{1}, FreshTimestamp); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if st.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", st.Pending())
	}
	if err := st.SCPush([]byte{1}, FreshTimestamp); err != ErrFull {
		t.Fatalf("expected ErrFull, got %v", err)
	}
}

func TestSTChargesSameAccessesOnHitVsPlayReplay(t *testing.T) {
	// The TC-visible access pattern when consuming an entry must be
	// identical in play and replay — the symmetric-access property.
	trace := func(mask int64, ts int64) []int64 {
		var addrs []int64
		st := NewST(0x9000_0000, 16, func(addr int64, write bool) {
			a := addr * 2
			if write {
				a++
			}
			addrs = append(addrs, a)
		})
		if err := st.SCPush([]byte("abcdefgh"), ts); err != nil {
			t.Fatal(err)
		}
		st.TCPoll(10_000, mask)
		return addrs
	}
	play := trace(PlayMask, FreshTimestamp)
	replay := trace(ReplayMask, 9_000)
	if len(play) != len(replay) {
		t.Fatalf("access counts differ: %d vs %d", len(play), len(replay))
	}
	for i := range play {
		if play[i] != replay[i] {
			t.Fatalf("access %d differs: %d vs %d", i, play[i], replay[i])
		}
	}
}

func TestTSOutputRoundTrip(t *testing.T) {
	ts := NewTS(0xA000_0000, 16, nil)
	msg := []byte("response-payload-123")
	if err := ts.TCSendOutput(msg); err != nil {
		t.Fatal(err)
	}
	recs := ts.SCDrain()
	if len(recs) != 1 || recs[0].Kind != TSOutput {
		t.Fatalf("records %+v", recs)
	}
	if !bytes.Equal(recs[0].Payload, msg) {
		t.Fatalf("payload %q, want %q", recs[0].Payload, msg)
	}
}

func TestTSEventPlayRecordsValue(t *testing.T) {
	ts := NewTS(0xA000_0000, 16, nil)
	got, err := ts.TCEvent(1234567, PlayMask)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1234567 {
		t.Fatalf("play event returned %d", got)
	}
	recs := ts.SCDrain()
	if len(recs) != 1 || recs[0].Kind != TSEvent || recs[0].Value != 1234567 {
		t.Fatalf("SC saw %+v", recs)
	}
}

func TestTSEventReplayInjectsLoggedValue(t *testing.T) {
	ts := NewTS(0xA000_0000, 16, nil)
	ts.SCPreloadEvent(42) // logged value from play
	got, err := ts.TCEvent(999999, ReplayMask)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("replay event returned %d, want the logged 42", got)
	}
}

func TestTSMixedStream(t *testing.T) {
	ts := NewTS(0xA000_0000, 16, nil)
	if err := ts.TCSendOutput([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.TCEvent(7, PlayMask); err != nil {
		t.Fatal(err)
	}
	if err := ts.TCSendOutput([]byte("b")); err != nil {
		t.Fatal(err)
	}
	recs := ts.SCDrain()
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Kind != TSOutput || recs[1].Kind != TSEvent || recs[2].Kind != TSOutput {
		t.Fatalf("kinds wrong: %+v", recs)
	}
}

func TestTSOverflow(t *testing.T) {
	ts := NewTS(0xA000_0000, 2, nil)
	if err := ts.TCSendOutput([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := ts.TCSendOutput([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := ts.TCSendOutput([]byte("z")); err != ErrFull {
		t.Fatalf("expected ErrFull, got %v", err)
	}
}

func TestPackUnpackBytes(t *testing.T) {
	f := func(b []byte) bool {
		if len(b) > 512 {
			b = b[:512]
		}
		words := make([]int64, (len(b)+7)/8)
		packBytes(words, b)
		out := make([]byte, len(b))
		unpackBytes(out, words)
		return bytes.Equal(b, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
