package audit

import (
	"fmt"

	"sanity/internal/pipeline"
)

// ErrCanceled is the sentinel matched by errors.Is when an audit was
// canceled through its context before every verdict was emitted. It
// is the same sentinel the pipeline layer raises, so a caller holding
// either package's name matches the same failures; the typed form
// (pipeline.CanceledError) additionally unwraps to the context cause,
// so errors.Is(err, context.Canceled) holds too.
var ErrCanceled = pipeline.ErrCanceled

// ErrNoWindow is the sentinel matched by errors.Is when the window
// prefilter cannot select an audit window: no training material to
// learn the benign entropy baseline from, or a trace too short to
// hold a single window. The typed form is NoWindowError.
var ErrNoWindow = fmt.Errorf("audit: no audit window")

// NoWindowError is the typed form of ErrNoWindow, carrying why the
// selection failed. It unwraps to ErrNoWindow.
type NoWindowError struct {
	// Reason says what the prefilter was missing.
	Reason string
}

// Error implements error.
func (e *NoWindowError) Error() string {
	return fmt.Sprintf("audit: cannot select an audit window: %s", e.Reason)
}

// Unwrap makes errors.Is(err, ErrNoWindow) hold.
func (e *NoWindowError) Unwrap() error { return ErrNoWindow }
