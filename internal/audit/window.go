package audit

import (
	"sanity/internal/pipeline"
	"sanity/internal/stats"
)

// WindowMode selects how a plan bounds each trace's TDR replay.
type WindowMode int

const (
	// ModeFull audits every trace whole: a full replay from virtual
	// time zero. The paper's baseline semantics, and the default.
	ModeFull WindowMode = iota
	// ModeTrailing audits each trace's trailing N inter-packet
	// delays, resuming from the log's last checkpoint before the
	// window — the fixed-window policy of the original windowed mode.
	ModeTrailing
	// ModeAuto runs the CCE-over-sliding-windows prefilter per trace
	// and audits the window it flags as most suspicious; traces the
	// prefilter finds statistically unremarkable are audited whole,
	// so auto-windowing can narrow an audit's cost but never its
	// verdict.
	ModeAuto
)

func (m WindowMode) String() string {
	switch m {
	case ModeTrailing:
		return "trailing"
	case ModeAuto:
		return "auto"
	}
	return "full"
}

// Window is a plan's replay-window policy: a mode plus, for the
// windowed modes, the window size in IPDs. Construct one with
// WindowFull, WindowTrailing, or WindowAuto.
type Window struct {
	Mode WindowMode
	// IPDs is the window size for ModeTrailing and ModeAuto.
	IPDs int
}

// DefaultAutoWindowIPDs is the auto-mode window size when none is
// given: wide enough that the sparse fixture channels (the needle's
// scaled periods) cannot slip a whole period between two windows,
// narrow enough to skip most of a long trace.
const DefaultAutoWindowIPDs = 32

// WindowFull audits every trace whole.
func WindowFull() Window { return Window{Mode: ModeFull} }

// WindowTrailing audits each trace's trailing n IPDs. A non-positive
// n selects WindowFull — the legacy pipeline meaning of
// Config.WindowIPDs = 0 — so a mechanical migration can pass the old
// knob through without silently narrowing whole-trace audits.
func WindowTrailing(n int) Window {
	if n <= 0 {
		return WindowFull()
	}
	return Window{Mode: ModeTrailing, IPDs: n}
}

// WindowAuto audits the n-IPD range the statistical prefilter flags
// as most suspicious per trace, falling back to the whole trace when
// nothing stands out. A non-positive n selects DefaultAutoWindowIPDs.
func WindowAuto(n int) Window {
	if n <= 0 {
		n = DefaultAutoWindowIPDs
	}
	return Window{Mode: ModeAuto, IPDs: n}
}

// The prefilter's knobs mirror the CCE detector's (Q equiprobable
// bins, patterns up to maxM) at a window-friendly pattern depth, and
// decisiveZ is the z-distance at which a window's entropy is
// considered localized evidence — the same significance level as the
// pipeline's statistical suspicion threshold.
const (
	selectQ    = 5
	selectMaxM = 6
	decisiveZ  = 3.0
)

// Selector is a shard's trained window-selection state: the benign
// binning and the per-window CCE baseline, learned once from the
// shard's training traces and shared by every per-trace selection.
type Selector struct {
	cuts   []float64
	size   int
	step   int
	mu, sd float64
}

// NewSelector trains the prefilter for one shard. The training traces
// are the shard's benign population; size is the audit-window size in
// IPDs. It fails with a NoWindowError (matching ErrNoWindow) when
// there is nothing to learn a baseline from: no training traces, or
// every training trace shorter than one window.
func NewSelector(training [][]int64, size int) (*Selector, error) {
	if size <= 0 {
		return nil, &NoWindowError{Reason: "window size must be positive"}
	}
	var pooled []float64
	for _, tr := range training {
		pooled = append(pooled, stats.Int64sToFloats(tr)...)
	}
	if len(pooled) < selectQ {
		return nil, &NoWindowError{Reason: "no benign training IPDs to learn an entropy baseline from"}
	}
	s := &Selector{
		cuts: stats.EquiprobableBins(pooled, selectQ),
		size: size,
		// A half-window step keeps the scan cheap while guaranteeing
		// any size-long anomalous run overlaps some window by at
		// least half.
		step: max(1, size/2),
	}
	var baseline []float64
	for _, tr := range training {
		baseline = append(baseline, stats.SlidingCCE(s.symbols(tr), selectQ, selectMaxM, size, s.step)...)
	}
	if len(baseline) == 0 {
		return nil, &NoWindowError{Reason: "every training trace is shorter than one window"}
	}
	s.mu = stats.Mean(baseline)
	s.sd = stats.StdDev(baseline)
	if s.sd <= 0 {
		// A degenerate baseline (identical windows) still needs a
		// scale; mirror the CCE detector's floor.
		s.sd = s.mu/100 + 1e-6
	}
	return s, nil
}

// symbols bins a trace's IPDs under the benign equiprobable cuts.
func (s *Selector) symbols(ipds []int64) []int {
	out := make([]int, len(ipds))
	for i, d := range ipds {
		out[i] = stats.BinIndex(s.cuts, float64(d))
	}
	return out
}

// Select runs the prefilter over one trace. When some window's CCE
// sits decisively outside the benign baseline (|z| >= 3), Select
// returns that window — the most suspicious one, earliest on ties —
// and ok=true. When no window stands out, it returns ok=false: the
// trace is either clean or its channel is statistically invisible
// (the needle's whole design), and only a full replay can tell, so
// the caller must not narrow that audit. A trace shorter than one
// window is never narrowed either.
//
// The asymmetry is deliberate and is what makes auto-windowing safe:
// a flagged window narrows the replay of a trace the statistics
// already condemn (the TDR window then localizes and confirms the
// evidence), while the absence of statistical evidence never buys a
// discount — exactly the traces an adversary crafts to look benign
// keep their full-coverage audit.
func (s *Selector) Select(ipds []int64) (w pipeline.IPDWindow, ok bool) {
	w, _, ok = pickWindow(s.Scan(ipds))
	return w, ok
}

// Scan runs the prefilter's sliding-CCE pass over one trace and
// returns every candidate window with its signed z-score against the
// benign baseline — the raw evidence Select condenses into a single
// choice, exported for explain mode. A trace shorter than one window
// yields no candidates.
func (s *Selector) Scan(ipds []int64) []pipeline.WindowScore {
	if len(ipds) <= s.size {
		return nil
	}
	scan := stats.SlidingCCE(s.symbols(ipds), selectQ, selectMaxM, s.size, s.step)
	out := make([]pipeline.WindowScore, len(scan))
	for i, v := range scan {
		from := i * s.step
		out[i] = pipeline.WindowScore{From: from, To: from + s.size, Z: (v - s.mu) / s.sd}
	}
	return out
}

// SeedZ scores the scan-grid window nearest the hinted IPD range
// against the benign baseline — the O(window) fast path a triage hint
// buys, versus Scan's O(trace) sweep. The hint is snapped to the
// selector's own grid (triage and the planner may disagree on window
// geometry), so a decisive seed always names a window the full scan
// could itself have produced. ok is false when the trace is too short
// to narrow at all.
func (s *Selector) SeedZ(ipds []int64, hint pipeline.IPDWindow) (ws pipeline.WindowScore, ok bool) {
	if len(ipds) <= s.size {
		return pipeline.WindowScore{}, false
	}
	last := (len(ipds) - s.size) / s.step
	i := (hint.From + s.step/2) / s.step
	i = max(0, min(i, last))
	from := i * s.step
	v := stats.CCE(s.symbols(ipds[from:from+s.size]), selectQ, selectMaxM)
	return pipeline.WindowScore{From: from, To: from + s.size, Z: (v - s.mu) / s.sd}, true
}

// pickWindow applies Select's decision rule to a scan: the window
// with the largest |z|, earliest on ties (strict >), and only when
// that |z| clears decisiveZ.
func pickWindow(scan []pipeline.WindowScore) (w pipeline.IPDWindow, bestZ float64, ok bool) {
	best := -1
	for i, ws := range scan {
		z := ws.Z
		if z < 0 {
			z = -z
		}
		if z > bestZ {
			best, bestZ = i, z
		}
	}
	if best < 0 || bestZ < decisiveZ {
		return pipeline.IPDWindow{}, bestZ, false
	}
	return pipeline.IPDWindow{From: scan[best].From, To: scan[best].To}, bestZ, true
}

// SelectWindow is the one-shot form of the prefilter: train a
// selector on the shard's benign traces and flag the most suspicious
// size-IPD range of one trace. The plan stage uses a cached Selector
// per shard instead; SelectWindow exists for callers probing a single
// trace. The second return is false when nothing stands out (audit
// the whole trace); the error matches ErrNoWindow when selection
// cannot run at all.
func SelectWindow(training [][]int64, ipds []int64, size int) (pipeline.IPDWindow, bool, error) {
	s, err := NewSelector(training, size)
	if err != nil {
		return pipeline.IPDWindow{}, false, err
	}
	w, ok := s.Select(ipds)
	return w, ok, nil
}
