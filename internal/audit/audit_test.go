package audit_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"sanity/internal/audit"
	"sanity/internal/calib"
	"sanity/internal/fixtures"
	"sanity/internal/hw"
	"sanity/internal/pipeline"
	"sanity/internal/store"
)

// The differential property this file pins: the Auditor session API
// is a *surface* redesign, not a semantics change. For every audit
// mode the legacy pipeline entry points supported — same-machine,
// calibrated cross-machine, mixed checkpointed/legacy corpora, any
// worker count — Auditor.Plan(...).RunAll(ctx) produces a canonical
// verdict stream byte-identical to the legacy path's.

// exportCheckpointedNFS records a small checkpointed NFS corpus into
// a fresh store under t.
func exportCheckpointedNFS(t *testing.T, traces, packets, every int, seed uint64) *store.Store {
	t.Helper()
	set, err := fixtures.PlayedSetCheckpointed(fixtures.AuditSizes(traces, packets), every, seed)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fixtures.ExportSet(st, set, fixtures.NFSShardMeta(seed+777)); err != nil {
		t.Fatal(err)
	}
	return st
}

// legacyCanonical audits the store's batch through the legacy
// pipeline surface and returns the canonical verdict stream.
func legacyCanonical(t *testing.T, st *store.Store, resolve pipeline.ShardResolver, cfg pipeline.Config) []byte {
	t.Helper()
	b, err := pipeline.BatchFromStore(st, resolve)
	if err != nil {
		t.Fatal(err)
	}
	r, err := pipeline.New(cfg).Run(b)
	if err != nil {
		t.Fatal(err)
	}
	return r.Canonical()
}

// auditorCanonical audits the same store through the Auditor session
// API and returns the canonical verdict stream.
func auditorCanonical(t *testing.T, st *store.Store, opts ...audit.Option) []byte {
	t.Helper()
	a, err := audit.New(append([]audit.Option{audit.WithRegistry(fixtures.KnownGood)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := a.Plan(context.Background(), audit.FromStore(st))
	if err != nil {
		t.Fatal(err)
	}
	r, err := plan.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return r.Canonical()
}

// TestAuditorParitySameMachine: whole-trace and trailing-window
// audits over a persisted corpus, 1 vs N workers — the new path must
// reproduce the legacy stream byte for byte.
func TestAuditorParitySameMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("records a played corpus")
	}
	st := exportCheckpointedNFS(t, 8, 60, 8, 4242)
	for _, tc := range []struct {
		name   string
		cfg    pipeline.Config
		window audit.Window
	}{
		{"full", pipeline.Config{}, audit.WindowFull()},
		{"trailing", pipeline.Config{WindowIPDs: 12}, audit.WindowTrailing(12)},
	} {
		for _, workers := range []int{1, 4} {
			cfg := tc.cfg
			cfg.Workers = workers
			legacy := legacyCanonical(t, st, fixtures.Resolver, cfg)
			got := auditorCanonical(t, st, audit.WithWorkers(workers), audit.WithWindow(tc.window))
			if !bytes.Equal(got, legacy) {
				t.Fatalf("%s/workers=%d: auditor stream diverged from the legacy pipeline\nauditor:\n%s\nlegacy:\n%s",
					tc.name, workers, got, legacy)
			}
		}
	}
}

// TestAuditorParityCalibratedCrossMachine: the cross-machine mode —
// declared via WithAuditorMachine + WithCalibration instead of a
// hand-built resolver — reproduces the legacy calibrated stream.
func TestAuditorParityCalibratedCrossMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("records a played corpus and fits a calibration")
	}
	st := exportCheckpointedNFS(t, 6, 60, 8, 991)
	auditor := hw.SlowerT()
	model, err := fixtures.CalibratePair("nfsd", hw.Optiplex9020(), auditor, 2, 60, 1717)
	if err != nil {
		t.Fatal(err)
	}
	models := calib.NewSet()
	models.Add(model)

	for _, workers := range []int{1, 3} {
		legacy := legacyCanonical(t, st, fixtures.CalibratedResolver(auditor, models),
			pipeline.Config{Workers: workers, WindowIPDs: 10})
		got := auditorCanonical(t, st,
			audit.WithWorkers(workers),
			audit.WithWindow(audit.WindowTrailing(10)),
			audit.WithAuditorMachine(auditor),
			audit.WithCalibration(models))
		if !bytes.Equal(got, legacy) {
			t.Fatalf("workers=%d: calibrated auditor stream diverged from the legacy path", workers)
		}
	}
}

// TestAuditorParityMixedCorpus: a corpus mixing a checkpointed NFS
// shard with a legacy (checkpoint-free) echo shard, audited windowed:
// the new path resumes where it can and falls back where it must,
// exactly like the old one.
func TestAuditorParityMixedCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("records two played corpora")
	}
	seed := uint64(313)
	sizes := fixtures.AuditSizes(6, 60)
	nfsSet, err := fixtures.PlayedSetCheckpointed(sizes, 8, seed)
	if err != nil {
		t.Fatal(err)
	}
	echoSet, err := fixtures.EchoSet(sizes, seed+0x51AB) // no checkpoints
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fixtures.ExportSet(st, nfsSet, fixtures.NFSShardMeta(seed+777)); err != nil {
		t.Fatal(err)
	}
	if err := fixtures.ExportSet(st, echoSet, fixtures.EchoShardMeta(seed+778)); err != nil {
		t.Fatal(err)
	}
	legacy := legacyCanonical(t, st, fixtures.Resolver, pipeline.Config{Workers: 4, WindowIPDs: 12})
	got := auditorCanonical(t, st, audit.WithWorkers(4), audit.WithWindow(audit.WindowTrailing(12)))
	if !bytes.Equal(got, legacy) {
		t.Fatal("mixed-corpus auditor stream diverged from the legacy path")
	}
}

// TestWindowAutoAgreesWithFullReplay: the auto-selection mode must
// agree with whole-trace audits on every labeled trace — benign and
// covert — while actually replaying fewer IPDs. This is the safety
// contract that lets a service turn `-window auto` on by default.
func TestWindowAutoAgreesWithFullReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("records a played corpus")
	}
	st := exportCheckpointedNFS(t, 16, 60, 8, 20_26)

	a, err := audit.New(audit.WithRegistry(fixtures.KnownGood))
	if err != nil {
		t.Fatal(err)
	}
	fullPlan, err := a.Plan(context.Background(), audit.FromStore(st))
	if err != nil {
		t.Fatal(err)
	}
	full, err := fullPlan.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	auto, err := audit.New(audit.WithRegistry(fixtures.KnownGood), audit.WithWindow(audit.WindowAuto(24)))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := auto.Plan(context.Background(), audit.FromStore(st))
	if err != nil {
		t.Fatal(err)
	}
	info := plan.Info()
	if info.AuditIPDs >= info.TotalIPDs || info.Narrowed == 0 {
		t.Fatalf("auto plan replays %d of %d IPDs (narrowed %d); expected a real reduction",
			info.AuditIPDs, info.TotalIPDs, info.Narrowed)
	}
	r, err := plan.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Verdicts) != len(full.Verdicts) {
		t.Fatalf("verdict counts diverged: %d vs %d", len(r.Verdicts), len(full.Verdicts))
	}
	for i := range r.Verdicts {
		if r.Verdicts[i].Suspicious != full.Verdicts[i].Suspicious {
			t.Errorf("trace %s (%s): auto verdict %v, full verdict %v",
				r.Verdicts[i].JobID, r.Verdicts[i].Label,
				r.Verdicts[i].Suspicious, full.Verdicts[i].Suspicious)
		}
	}
	if full.Metrics.TruePositives == 0 || full.Metrics.TrueNegatives == 0 {
		t.Fatalf("degenerate corpus: TP %d TN %d", full.Metrics.TruePositives, full.Metrics.TrueNegatives)
	}
}

// TestPlanDoesNotMutateSourceBatch: planning with auto windows must
// leave the caller's in-memory batch untouched, so one batch can feed
// plans with different window policies.
func TestPlanDoesNotMutateSourceBatch(t *testing.T) {
	set, err := fixtures.SyntheticSet(fixtures.SmallSet(), 5)
	if err != nil {
		t.Fatal(err)
	}
	b := set.Batch(false, 6)
	a, err := audit.New(audit.WithWindow(audit.WindowAuto(40)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Plan(context.Background(), audit.FromBatch(b)); err != nil {
		t.Fatal(err)
	}
	for i, j := range b.Jobs {
		if j.Window != nil {
			t.Fatalf("plan wrote a window into the source batch's job %d", i)
		}
	}
}

// TestAuditorOptionValidation: contradictory option sets are refused
// at construction, not discovered at plan time.
func TestAuditorOptionValidation(t *testing.T) {
	if _, err := audit.New(audit.WithCalibration(calib.NewSet())); err == nil {
		t.Fatal("WithCalibration without WithAuditorMachine accepted")
	}
	if _, err := audit.New(
		audit.WithAuditorMachine(hw.SlowerT()),
		audit.WithResolver(fixtures.Resolver),
	); err == nil {
		t.Fatal("WithAuditorMachine alongside WithResolver accepted")
	}
	// A custom resolver owns calibration itself; supplied models would
	// be silently dropped.
	if _, err := audit.New(
		audit.WithResolver(fixtures.Resolver),
		audit.WithCalibration(calib.NewSet()),
	); err == nil {
		t.Fatal("WithCalibration alongside WithResolver accepted")
	}
	if _, err := audit.New(); err != nil {
		t.Fatalf("zero-option auditor refused: %v", err)
	}
}

// TestPlanDefaultStore: Plan(ctx, nil) audits the WithStore
// directory; without one it fails fast.
func TestPlanDefaultStore(t *testing.T) {
	a, err := audit.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Plan(context.Background(), nil); err == nil {
		t.Fatal("nil source without WithStore accepted")
	}

	set, err := fixtures.SyntheticSet(fixtures.SetSizes{Training: 3, Benign: 2, Covert: 1, Packets: 120}, 9)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fixtures.ExportSet(st, set, fixtures.NFSShardMeta(7)); err != nil {
		t.Fatal(err)
	}
	a2, err := audit.New(audit.WithRegistry(fixtures.KnownGood), audit.WithStore(st.Dir()))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := a2.Plan(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Info().Jobs == 0 {
		t.Fatal("default-store plan resolved no jobs")
	}
}

// TestProgressReporting: the WithProgress callback sees the resolve
// stage and every emitted verdict.
func TestProgressReporting(t *testing.T) {
	set, err := fixtures.SyntheticSet(fixtures.SetSizes{Training: 3, Benign: 2, Covert: 1, Packets: 120}, 9)
	if err != nil {
		t.Fatal(err)
	}
	var events []audit.Progress
	a, err := audit.New(audit.WithProgress(func(p audit.Progress) { events = append(events, p) }))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := a.Plan(context.Background(), audit.FromBatch(set.Batch(false, 6)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.RunAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	stages := map[string]int{}
	for _, e := range events {
		stages[e.Stage]++
	}
	if stages["resolve"] == 0 {
		t.Fatalf("no resolve progress: %+v", stages)
	}
	if stages["audit"] != plan.Info().Jobs {
		t.Fatalf("audit progress events %d, want one per job (%d)", stages["audit"], plan.Info().Jobs)
	}
}

// TestTypedErrorsThroughPlan: every refusal the planning path can
// produce is errors.Is-matchable.
func TestTypedErrorsThroughPlan(t *testing.T) {
	// Unknown program -> ErrUnknownShard, through the full Plan path.
	st, err := store.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddShard(store.ShardMeta{Key: "x", Program: "mystery", Machine: "optiplex9020", Profile: "sanity"}); err != nil {
		t.Fatal(err)
	}
	a, err := audit.New(audit.WithRegistry(fixtures.KnownGood))
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.Plan(context.Background(), audit.FromStore(st))
	if !errors.Is(err, fixtures.ErrUnknownShard) {
		t.Fatalf("unknown-program plan error = %v, want ErrUnknownShard", err)
	}
	var typed *fixtures.UnknownShardError
	if !errors.As(err, &typed) || typed.Program != "mystery" {
		t.Fatalf("errors.As lost the program: %v", err)
	}

	// Uncalibrated machine pair -> ErrNoModel.
	st2, err := store.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.AddShard(store.ShardMeta{Key: "nfsd/optiplex9020/sanity", Program: "nfsd", Machine: "optiplex9020", Profile: "sanity", Seed: 7}); err != nil {
		t.Fatal(err)
	}
	cross, err := audit.New(
		audit.WithRegistry(fixtures.KnownGood),
		audit.WithAuditorMachine(hw.SlowerT()),
		audit.WithCalibration(calib.NewSet()))
	if err != nil {
		t.Fatal(err)
	}
	_, err = cross.Plan(context.Background(), audit.FromStore(st2))
	if !errors.Is(err, calib.ErrNoModel) {
		t.Fatalf("uncalibrated plan error = %v, want ErrNoModel", err)
	}
	var nme *calib.NoModelError
	if !errors.As(err, &nme) || nme.Recorded != "optiplex9020" {
		t.Fatalf("errors.As lost the machine pair: %v", err)
	}

	// Invalid batch -> ErrInvalidBatch at run time.
	bad := &pipeline.Batch{}
	bad.AddShard(&pipeline.Shard{Key: "s"})
	bad.Append(pipeline.Job{ID: "dangling", Shard: "other"})
	a2, err := audit.New()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := a2.Plan(context.Background(), audit.FromBatch(bad))
	if err != nil {
		t.Fatal(err)
	}
	_, err = plan.RunAll(context.Background())
	if !errors.Is(err, pipeline.ErrInvalidBatch) {
		t.Fatalf("invalid-batch run error = %v, want ErrInvalidBatch", err)
	}
	var be *pipeline.BatchError
	if !errors.As(err, &be) || be.JobID != "dangling" {
		t.Fatalf("errors.As lost the job: %v", err)
	}
}
