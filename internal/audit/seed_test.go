package audit_test

import (
	"context"
	"path/filepath"
	"testing"

	"sanity/internal/audit"
	"sanity/internal/fixtures"
	"sanity/internal/pipeline"
	"sanity/internal/store"
	"sanity/internal/triage"
)

// seedHint builds a triage-hint window literal.
func seedHint(from, to int) pipeline.IPDWindow {
	return pipeline.IPDWindow{From: from, To: to}
}

// seededCorpus exports a triage-scored corpus: a triage-enabled store
// scores every test trace on Put, so the manifest entries carry the
// ensemble's flagged windows and BatchFromStore turns those into job
// TriageHints.
func seededCorpus(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "corpus")
	set, err := fixtures.SyntheticSet(fixtures.SetSizes{Training: 6, Benign: 3, Covert: 2, Packets: 256}, 77)
	if err != nil {
		t.Fatal(err)
	}
	// Dense channels only: the seeded fast path needs hints on traces
	// whose windows are decisively anomalous.
	kept := set.Traces[:0]
	for _, lt := range set.Traces {
		if lt.Channel == "" || lt.Channel == "ipctc" {
			kept = append(kept, lt)
		}
	}
	set.Traces = kept
	st, err := store.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.EnableTriage(triage.Options{})
	if err := fixtures.ExportSet(st, set, fixtures.NFSShardMeta(7)); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestWindowSeedShortCircuitsScan: under WithWindowSeed, a decisive
// triage hint replaces the per-trace sliding scan; without the
// option the same corpus plans with zero seeded windows. Either way
// the narrowed set covers the covert traces.
func TestWindowSeedShortCircuitsScan(t *testing.T) {
	dir := seededCorpus(t)

	plain, err := audit.New(
		audit.WithRegistry(fixtures.KnownGood),
		audit.WithWindow(audit.WindowAuto(0)),
	)
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := audit.New(
		audit.WithRegistry(fixtures.KnownGood),
		audit.WithWindow(audit.WindowAuto(0)),
		audit.WithWindowSeed(),
	)
	if err != nil {
		t.Fatal(err)
	}

	pPlain, err := plain.Plan(context.Background(), audit.Dir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if got := pPlain.Info().Seeded; got != 0 {
		t.Fatalf("plan without WithWindowSeed seeded %d windows", got)
	}
	pSeeded, err := seeded.Plan(context.Background(), audit.Dir(dir))
	if err != nil {
		t.Fatal(err)
	}
	info := pSeeded.Info()
	// Both IPCTC traces carry decisive hints from ingest scoring; the
	// seeded plan must take the fast path for them.
	if info.Seeded < 2 {
		t.Fatalf("seeded plan took the fast path for %d jobs, want >= 2 (info %+v)", info.Seeded, info)
	}
	if info.Seeded > info.Narrowed {
		t.Fatalf("seeded %d > narrowed %d", info.Seeded, info.Narrowed)
	}
	// Seeding short-circuits selection; it must not weaken it. Every
	// covert trace still gets a suspicious verdict from either plan.
	for _, p := range []*audit.Plan{pPlain, pSeeded} {
		res, err := p.RunAll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Verdicts {
			if v.Label.String() == "covert" && !v.Suspicious {
				t.Fatalf("covert trace %q escaped a suspicious verdict (seeded=%v)", v.JobID, p == pSeeded)
			}
		}
	}
}

// TestWindowSeedIgnoresIndecisiveHint: a hint on a benign-looking
// trace must not narrow it — the fast path only fires when the
// hinted window clears the same decisive threshold the full scan
// uses, so seeding can never audit less than scanning would.
func TestWindowSeedIgnoresIndecisiveHint(t *testing.T) {
	const packets = 256
	training := fixtures.SyntheticTraining(6, packets, 42)
	sel, err := audit.NewSelector(training, 32)
	if err != nil {
		t.Fatal(err)
	}
	benign := fixtures.SyntheticIPDs(packets, 4242)
	ws, ok := sel.SeedZ(benign, seedHint(16, 48))
	if !ok {
		t.Fatal("SeedZ refused a trace longer than one window")
	}
	if ws.Z >= 3 || ws.Z <= -3 {
		t.Fatalf("benign hinted window scored decisive z=%.2f — the fixture assumption broke", ws.Z)
	}
	// Snapping stays on the selector's grid and in bounds, even for
	// hints past the end of the trace.
	for _, from := range []int{-100, 0, 5, packets - 1, packets + 500} {
		ws, ok := sel.SeedZ(benign, seedHint(from, from+32))
		if !ok {
			t.Fatalf("SeedZ(%d) refused", from)
		}
		if ws.From < 0 || ws.To > len(benign) || ws.To-ws.From != 32 {
			t.Fatalf("SeedZ(%d) produced out-of-bounds window [%d,%d)", from, ws.From, ws.To)
		}
		if ws.From%16 != 0 {
			t.Fatalf("SeedZ(%d) left the scan grid: from=%d", from, ws.From)
		}
	}
}
