// Package audit is the coherent audit surface over the TDR pipeline:
// one Auditor, built once from declarative options, plans and runs
// audits over any source of traces — an in-memory batch, a persistent
// corpus directory, a spool an ingest server is filling — with
// windowing, calibration, and storage expressed as properties of the
// audit *plan* rather than as incompatible code paths.
//
// The shape follows the paper's cloud-verification deployment (§5.2)
// and the audit-service framing of Aviram et al. and Deterland: a
// verification service embeds one Auditor and feeds it corpora.
//
//	auditor, _ := audit.New(
//	    audit.WithRegistry(reg),
//	    audit.WithWorkers(8),
//	    audit.WithWindow(audit.WindowAuto(0)),
//	)
//	plan, _ := auditor.Plan(ctx, audit.Dir("corpus"))
//	for v, err := range plan.Run(ctx) { ... }
//
// Plan resolves shards against the auditor's known-good registry,
// applies cross-machine calibration, and — for auto windowing — runs
// the CCE-over-sliding-windows prefilter that picks each trace's
// audited IPD range. Run streams verdicts in submission order and
// honors context cancellation at every layer of the pipeline.
package audit

import (
	"fmt"

	"sanity/internal/calib"
	"sanity/internal/hw"
	"sanity/internal/pipeline"
)

// Progress is one planning or auditing milestone, delivered to the
// WithProgress callback: which stage the auditor is in and how far
// along it is. Total is 0 when the stage's size is unknown.
type Progress struct {
	// Stage is "resolve" (shard resolution + training loads),
	// "select" (window prefiltering), or "audit" (verdicts emitted).
	Stage string
	// Done and Total count the stage's units (shards, traces, jobs).
	Done, Total int
}

// Auditor is a reusable audit configuration: build it once with New,
// then Plan and Run any number of audits, sequentially or
// concurrently. All fields are set at construction; an Auditor is
// immutable and safe for concurrent use.
type Auditor struct {
	workers    int
	segWorkers int
	batchSize  int
	queueDepth int
	tdrLimit   float64
	statLimit  float64
	window     Window
	registry   Registry
	resolver   pipeline.ShardResolver
	machine    *hw.MachineSpec
	models     *calib.Set
	progress   func(Progress)
	storeDir   string
	explain    bool
	seedWindow bool
}

// Option configures an Auditor.
type Option func(*Auditor)

// WithWorkers sets the audit worker-pool size. Zero or negative
// selects GOMAXPROCS.
func WithWorkers(n int) Option { return func(a *Auditor) { a.workers = n } }

// WithSegmentWorkers sets how many goroutines each trace's replay may
// spread its checkpoint-bounded segments across
// (pipeline.Config.SegmentWorkers). The merged replay is
// verdict-identical to the sequential one; the knob only trades cores
// for per-trace latency. Zero or one keeps replay sequential. Segment
// workers multiply with WithWorkers — raise one, not both, unless the
// fleet has cores to spare.
func WithSegmentWorkers(n int) Option { return func(a *Auditor) { a.segWorkers = n } }

// WithBatchSize sets how many same-shard jobs are dispatched as one
// scheduling chunk. Zero selects the pipeline default.
func WithBatchSize(n int) Option { return func(a *Auditor) { a.batchSize = n } }

// WithQueueDepth bounds the chunk queue between scheduler and
// workers. Zero selects the pipeline default (2x workers).
func WithQueueDepth(n int) Option { return func(a *Auditor) { a.queueDepth = n } }

// WithThresholds sets the suspicion thresholds: tdr on the TDR
// detector's maximum relative IPD deviation, stat on the CCE
// detector's z-distance for traces without replay logs. Zero keeps
// either default (0.05 and 3).
func WithThresholds(tdr, stat float64) Option {
	return func(a *Auditor) { a.tdrLimit, a.statLimit = tdr, stat }
}

// WithWindow sets the replay-window policy (WindowFull,
// WindowTrailing, WindowAuto) applied at plan time.
func WithWindow(w Window) Option { return func(a *Auditor) { a.window = w } }

// WithRegistry sets the auditor's known-good registry: the programs
// it can replay and their canonical configurations. Required unless
// every source is an in-memory batch that carries its own binaries,
// or WithResolver supplies a complete resolver.
func WithRegistry(reg Registry) Option { return func(a *Auditor) { a.registry = reg } }

// WithResolver overrides shard resolution entirely. Most callers
// want WithRegistry (plus WithAuditorMachine / WithCalibration for
// cross-machine audits) instead; the escape hatch exists for
// resolvers that consult external policy.
func WithResolver(r pipeline.ShardResolver) Option { return func(a *Auditor) { a.resolver = r } }

// WithAuditorMachine declares the machine type the auditor actually
// owns, switching resolution to the cross-machine mode: shards
// recorded on other machine types replay on this machine through the
// calibration set's fitted time-dilation models, and pairs without a
// model are refused with calib.ErrNoModel.
func WithAuditorMachine(m hw.MachineSpec) Option {
	return func(a *Auditor) { spec := m; a.machine = &spec }
}

// WithCalibration supplies the fitted time-dilation models used by
// cross-machine resolution (see WithAuditorMachine).
func WithCalibration(set *calib.Set) Option { return func(a *Auditor) { a.models = set } }

// WithProgress installs a progress callback. It is called
// synchronously from the planning and collecting goroutines and must
// be cheap; nil disables reporting.
func WithProgress(fn func(Progress)) Option { return func(a *Auditor) { a.progress = fn } }

// WithStore sets the auditor's default source: the persistent corpus
// at dir. Plan(ctx, nil) audits it, so a service that always audits
// one spool directory configures it once.
func WithStore(dir string) Option { return func(a *Auditor) { a.storeDir = dir } }

// WithExplain attaches the evidence trail to every verdict
// (Verdict.Explain): which window was audited and why, the window
// selector's per-window CCE z-scores under auto windowing, and the
// TDR deviation summary. Scores, decisions, and the canonical verdict
// encoding are unaffected — explain is additive evidence, not a
// different audit.
func WithExplain() Option { return func(a *Auditor) { a.explain = true } }

// WithWindowSeed lets auto-window planning start from each job's
// triage hint (pipeline.Job.TriageHint — the window the ingest-time
// detector ensemble flagged): the hinted region is scored first and,
// when it is decisive on its own, the per-trace sliding scan is
// skipped entirely. Jobs without a hint, or whose hint does not
// clear the decisive threshold, fall back to the full scan, so
// seeding never weakens the selection — it only short-circuits it.
//
// Off by default: a decisive seed can narrow a trace to a different
// (equally decisive) window than the full scan's arg-max would pick,
// so seeded verdict streams are not guaranteed byte-identical to
// un-seeded ones. Turn it on when plan latency matters more than
// bit-for-bit parity with un-triaged audits.
func WithWindowSeed() Option { return func(a *Auditor) { a.seedWindow = true } }

// New builds an Auditor from its options.
func New(opts ...Option) (*Auditor, error) {
	a := &Auditor{window: WindowFull()}
	for _, opt := range opts {
		opt(a)
	}
	if a.machine != nil && a.resolver != nil {
		return nil, fmt.Errorf("audit: WithAuditorMachine and WithResolver are mutually exclusive — a custom resolver owns machine substitution itself")
	}
	// Calibration without a declared auditor machine is always a
	// contradiction: the plain registry resolver never consults the
	// models, and a custom resolver owns calibration itself — either
	// way the supplied models would be silently dropped.
	if a.models != nil && a.machine == nil {
		return nil, fmt.Errorf("audit: WithCalibration needs WithAuditorMachine to name the machine the models map onto")
	}
	return a, nil
}

// Workers reports the effective worker-pool size of this auditor's
// runs.
func (a *Auditor) Workers() int { return pipeline.New(a.pipelineConfig()).Workers() }

// pipelineConfig renders the auditor's knobs as a pipeline
// configuration. The window policy's pipeline half (WindowIPDs) is
// applied here; the per-job half (auto-selected Job.Window overrides)
// is applied by Plan.
func (a *Auditor) pipelineConfig() pipeline.Config {
	cfg := pipeline.Config{
		Workers:        a.workers,
		SegmentWorkers: a.segWorkers,
		BatchSize:      a.batchSize,
		QueueDepth:     a.queueDepth,
		TDRThreshold:   a.tdrLimit,
		StatThreshold:  a.statLimit,
		Explain:        a.explain,
	}
	if a.window.Mode != ModeFull {
		cfg.WindowIPDs = a.window.IPDs
	}
	return cfg
}

// shardResolver is the resolver the auditor plans with: the explicit
// override, else the registry-derived resolver (calibrated when an
// auditor machine is declared), else nil — in-memory sources that
// carry their own binaries need none.
func (a *Auditor) shardResolver() pipeline.ShardResolver {
	if a.resolver != nil {
		return a.resolver
	}
	if a.registry == nil {
		return nil
	}
	if a.machine != nil {
		return CalibratedResolverFrom(a.registry, *a.machine, a.models)
	}
	return ResolverFrom(a.registry)
}

// report delivers a progress milestone, if a callback is installed.
func (a *Auditor) report(p Progress) {
	if a.progress != nil {
		a.progress(p)
	}
}
