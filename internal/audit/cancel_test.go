package audit_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"sanity/internal/audit"
	"sanity/internal/detect"
	"sanity/internal/fixtures"
	"sanity/internal/pipeline"
)

// gatedBatch builds a statistical-only batch of n jobs where every
// job past `free` blocks in its loader until gate closes — the
// deterministic way to catch a run mid-batch.
func gatedBatch(t *testing.T, n, free int, gate <-chan struct{}) *pipeline.Batch {
	t.Helper()
	b := &pipeline.Batch{}
	b.AddShard(&pipeline.Shard{
		Key:      "synthetic",
		Training: fixtures.SyntheticTraining(4, 120, 11),
	})
	for i := 0; i < n; i++ {
		i := i
		b.Append(pipeline.Job{
			ID:    fmt.Sprintf("job-%d", i),
			Shard: "synthetic",
			Label: pipeline.LabelBenign,
			Load: func() (*detect.Trace, error) {
				if i >= free {
					<-gate
				}
				return &detect.Trace{IPDs: fixtures.SyntheticIPDs(120, 100+uint64(i))}, nil
			},
		})
	}
	return b
}

// assertOrderedPrefix fails unless verdicts are exactly indices
// 0..len-1 in order — cancellation truncates the stream, it never
// reorders or punches holes in it.
func assertOrderedPrefix(t *testing.T, verdicts []pipeline.Verdict) {
	t.Helper()
	for i, v := range verdicts {
		if v.Index != i {
			t.Fatalf("verdict %d has index %d — stream is not an ordered prefix", i, v.Index)
		}
	}
}

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (with slack for runtime housekeeping), or fails.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelMidBatch: canceling the run context mid-batch yields the
// partial, in-order verdicts, a final error matching both ErrCanceled
// and context.Canceled, and leaves no goroutine behind.
func TestCancelMidBatch(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const total, free = 40, 6
	gate := make(chan struct{})
	b := gatedBatch(t, total, free, gate)

	a, err := audit.New(audit.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := a.Plan(context.Background(), audit.FromBatch(b))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var verdicts []pipeline.Verdict
	var runErr error
	for v, err := range plan.Run(ctx) {
		if err != nil {
			runErr = err
			break
		}
		verdicts = append(verdicts, v)
		if len(verdicts) == free {
			cancel()
			close(gate) // release the workers blocked in Load
		}
	}
	cancel()
	if !errors.Is(runErr, audit.ErrCanceled) {
		t.Fatalf("run error = %v, want ErrCanceled", runErr)
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("run error = %v, want to match context.Canceled too", runErr)
	}
	var ce *pipeline.CanceledError
	if !errors.As(runErr, &ce) || ce.Emitted != len(verdicts) {
		t.Fatalf("errors.As lost the emitted count: %v (got %d verdicts)", runErr, len(verdicts))
	}
	if len(verdicts) < free || len(verdicts) >= total {
		t.Fatalf("emitted %d verdicts, want a partial stream of >= %d", len(verdicts), free)
	}
	assertOrderedPrefix(t, verdicts)
	waitForGoroutines(t, baseline)
}

// TestBreakOutOfRun: abandoning the iterator (break) cancels the run
// and reclaims every pipeline goroutine before the loop returns.
func TestBreakOutOfRun(t *testing.T) {
	baseline := runtime.NumGoroutine()
	gate := make(chan struct{})
	close(gate) // nothing blocks; we abandon voluntarily
	b := gatedBatch(t, 40, 40, gate)

	a, err := audit.New(audit.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := a.Plan(context.Background(), audit.FromBatch(b))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for v, err := range plan.Run(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		if v.Index != seen {
			t.Fatalf("verdict index %d, want %d", v.Index, seen)
		}
		seen++
		if seen == 5 {
			break
		}
	}
	if seen != 5 {
		t.Fatalf("consumed %d verdicts before breaking, want 5", seen)
	}
	waitForGoroutines(t, baseline)
}

// TestPreCanceledContext: a context canceled before the run starts
// fails fast with the typed error and emits nothing.
func TestPreCanceledContext(t *testing.T) {
	gate := make(chan struct{})
	close(gate)
	b := gatedBatch(t, 8, 8, gate)
	a, err := audit.New()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := a.Plan(context.Background(), audit.FromBatch(b))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := plan.RunAll(ctx)
	if !errors.Is(err, audit.ErrCanceled) {
		t.Fatalf("pre-canceled run error = %v, want ErrCanceled", err)
	}
	if r != nil && len(r.Verdicts) != 0 {
		t.Fatalf("pre-canceled run emitted %d verdicts", len(r.Verdicts))
	}

	// Plan itself also honors a dead context for store sources.
	_, err = a.Plan(ctx, audit.FromBatch(b))
	if !errors.Is(err, audit.ErrCanceled) {
		t.Fatalf("pre-canceled plan error = %v, want ErrCanceled", err)
	}
}

// TestCompleteRunNoError: an uncanceled run ends with no error and a
// complete stream — the cancellation machinery must be invisible on
// the happy path.
func TestCompleteRunNoError(t *testing.T) {
	gate := make(chan struct{})
	close(gate)
	b := gatedBatch(t, 12, 12, gate)
	a, err := audit.New(audit.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := a.Plan(context.Background(), audit.FromBatch(b))
	if err != nil {
		t.Fatal(err)
	}
	var verdicts []pipeline.Verdict
	for v, err := range plan.Run(context.Background()) {
		if err != nil {
			t.Fatalf("unexpected stream error: %v", err)
		}
		verdicts = append(verdicts, v)
	}
	if len(verdicts) != 12 {
		t.Fatalf("complete run emitted %d/12 verdicts", len(verdicts))
	}
	assertOrderedPrefix(t, verdicts)
}
