package audit

import (
	"context"
	"fmt"

	"sanity/internal/pipeline"
	"sanity/internal/store"
)

// Source is where an audit's traces come from. The three shipped
// sources — an in-memory batch, an open store, a corpus directory —
// cover every mode the tooling had grown separately; a custom Source
// can stream jobs from anywhere that can express them as a pipeline
// batch.
type Source interface {
	// Batch materializes the population to audit: shards (with their
	// training material) and jobs in submission order. resolve maps
	// stored shard metadata onto the auditor's known-good material;
	// sources that already carry their binaries may ignore it. Batch
	// must honor ctx: a canceled context aborts the (potentially
	// disk-heavy) materialization with an error matching ErrCanceled.
	Batch(ctx context.Context, resolve pipeline.ShardResolver) (*pipeline.Batch, error)
}

// batchSource adapts an in-memory batch.
type batchSource struct{ b *pipeline.Batch }

// FromBatch audits an in-memory batch as-is: its shards already carry
// binaries, configurations, and training material, so the auditor's
// registry and calibration options do not apply to it.
func FromBatch(b *pipeline.Batch) Source { return batchSource{b} }

func (s batchSource) Batch(ctx context.Context, _ pipeline.ShardResolver) (*pipeline.Batch, error) {
	if s.b == nil {
		return nil, fmt.Errorf("audit: nil batch")
	}
	if err := ctx.Err(); err != nil {
		return nil, &pipeline.CanceledError{Cause: context.Cause(ctx)}
	}
	return s.b, nil
}

// storeSource adapts an open persistent store.
type storeSource struct{ st *store.Store }

// FromStore audits a persistent corpus through an already-open store.
// Shard metadata resolves through the auditor's registry; test traces
// stream from disk as they are audited.
func FromStore(st *store.Store) Source { return storeSource{st} }

func (s storeSource) Batch(ctx context.Context, resolve pipeline.ShardResolver) (*pipeline.Batch, error) {
	if s.st == nil {
		return nil, fmt.Errorf("audit: nil store")
	}
	return pipeline.BatchFromStoreContext(ctx, s.st, resolve)
}

// dirSource opens a corpus directory lazily, at plan time.
type dirSource struct{ dir string }

// Dir audits the persistent corpus in a directory, opening its
// manifest at plan time — the one-liner for "audit this spool".
func Dir(dir string) Source { return dirSource{dir} }

func (s dirSource) Batch(ctx context.Context, resolve pipeline.ShardResolver) (*pipeline.Batch, error) {
	st, err := store.Open(s.dir)
	if err != nil {
		return nil, err
	}
	return pipeline.BatchFromStoreContext(ctx, st, resolve)
}
