package audit_test

import (
	"context"
	"sort"
	"strings"
	"testing"

	"sanity/internal/audit"
	"sanity/internal/fixtures"
	"sanity/internal/obs"
	"sanity/internal/store"
)

// spanAudit audits st with the given worker count under a fresh
// observer and returns the drained spans plus the canonical verdicts.
func spanAudit(t *testing.T, st *store.Store, workers int) ([]obs.SpanRecord, []byte) {
	t.Helper()
	tracer := obs.NewTracer()
	ctx := obs.NewObserver(tracer, nil).Context(context.Background())
	a, err := audit.New(
		audit.WithRegistry(fixtures.KnownGood),
		audit.WithWorkers(workers),
		audit.WithWindow(audit.WindowTrailing(8)),
	)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := a.Plan(ctx, audit.FromStore(st))
	if err != nil {
		t.Fatal(err)
	}
	r, err := plan.RunAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return tracer.Drain(), r.Canonical()
}

// TestAuditSpanTree pins the tracing contract on a real windowed
// audit over a checkpointed store-backed corpus: the spans form
// rooted trees (no orphans), child intervals nest inside their
// parents with monotone timestamps, every funnel stage shows up for
// every audited trace, and the per-trace stage multisets are
// identical whether the pipeline ran with 1 worker or 4. Runs under
// -race in CI, so concurrent span recording is exercised too.
func TestAuditSpanTree(t *testing.T) {
	st := exportCheckpointedNFS(t, 6, 48, 12, 23)

	stagesByJob := func(spans []obs.SpanRecord) map[string][]string {
		byID := make(map[uint64]obs.SpanRecord, len(spans))
		for _, s := range spans {
			if s.ID == 0 || s.Name == "" {
				t.Fatalf("span missing id or name: %+v", s)
			}
			byID[s.ID] = s
		}
		attr := func(s obs.SpanRecord, key string) string {
			for _, a := range s.Attrs {
				if a.Key == key {
					return a.Value
				}
			}
			return ""
		}
		jobOf := make(map[uint64]string) // root id -> job id
		for _, s := range spans {
			switch {
			case s.Parent == 0:
				if s.Root != s.ID {
					t.Fatalf("parentless span %q has root %d != id %d", s.Name, s.Root, s.ID)
				}
			default:
				p, ok := byID[s.Parent]
				if !ok {
					t.Fatalf("span %q (id %d) is orphaned: parent %d not recorded", s.Name, s.ID, s.Parent)
				}
				if s.Root != p.Root {
					t.Fatalf("span %q has root %d but its parent's root is %d", s.Name, s.Root, p.Root)
				}
				if s.Start.Before(p.Start) {
					t.Fatalf("span %q starts before its parent %q", s.Name, p.Name)
				}
				if !s.Instant && s.Start.Add(s.Dur).After(p.Start.Add(p.Dur)) {
					t.Fatalf("span %q [%v +%v] ends after its parent %q [%v +%v]",
						s.Name, s.Start, s.Dur, p.Name, p.Start, p.Dur)
				}
			}
			if s.Name == obs.StageTrace {
				if s.Parent != 0 {
					t.Fatalf("per-trace root %q has a parent", s.Name)
				}
				job := attr(s, "job")
				if job == "" {
					t.Fatalf("per-trace root has no job attr: %+v", s)
				}
				jobOf[s.ID] = job
			}
		}
		out := make(map[string][]string)
		for _, s := range spans {
			if job, ok := jobOf[s.Root]; ok && s.ID != s.Root {
				out[job] = append(out[job], s.Name)
			}
		}
		for job := range out {
			sort.Strings(out[job])
		}
		return out
	}

	spans1, canon1 := spanAudit(t, st, 1)
	spans4, canon4 := spanAudit(t, st, 4)
	if string(canon1) != string(canon4) {
		t.Fatal("verdicts diverged between worker counts with tracing on")
	}

	jobs1 := stagesByJob(spans1)
	jobs4 := stagesByJob(spans4)
	wantTraces := 0
	for _, e := range st.Entries() {
		if e.Role == store.RoleTest {
			wantTraces++
		}
	}
	if len(jobs1) != wantTraces {
		t.Fatalf("1-worker run rooted %d trace trees, corpus has %d test traces", len(jobs1), wantTraces)
	}

	// Every audited trace passes through the whole funnel: lazy load
	// from the store, the statistical detectors, the TDR branch with
	// its checkpoint restore + windowed replay + compare, the verdict.
	want := []string{obs.StageCompare, obs.StageLoad, obs.StageReplay,
		obs.StageRestore, obs.StageStat, obs.StageTDR, obs.StageVerdict}
	for job, stages := range jobs1 {
		if strings.Join(stages, ",") != strings.Join(want, ",") {
			t.Fatalf("job %s recorded stages %v, want %v", job, stages, want)
		}
	}

	// The per-trace stage multisets must not depend on the worker
	// count — parallelism changes interleaving, never the tree shape.
	for job, stages := range jobs1 {
		other, ok := jobs4[job]
		if !ok {
			t.Fatalf("job %s present with 1 worker but missing with 4", job)
		}
		if strings.Join(stages, ",") != strings.Join(other, ",") {
			t.Fatalf("job %s stage sets diverge across worker counts: %v vs %v", job, stages, other)
		}
	}

	// Plan-level spans: shard resolution is its own root, once per
	// plan; window selection only runs in auto mode, so a trailing
	// plan must not record it.
	for _, spans := range [][]obs.SpanRecord{spans1, spans4} {
		counts := map[string]int{}
		for _, s := range spans {
			counts[s.Name]++
		}
		if counts[obs.StageResolve] != 1 || counts[obs.StageSelect] != 0 {
			t.Fatalf("plan-level spans wrong: resolve=%d select=%d, want 1 and 0",
				counts[obs.StageResolve], counts[obs.StageSelect])
		}
	}

	// An auto-window plan DOES record the selection stage — planning
	// alone (no Run) is enough to see resolve + select.
	tracer := obs.NewTracer()
	ctx := obs.NewObserver(tracer, nil).Context(context.Background())
	auto, err := audit.New(
		audit.WithRegistry(fixtures.KnownGood),
		audit.WithWindow(audit.WindowAuto(8)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := auto.Plan(ctx, audit.FromStore(st)); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, s := range tracer.Drain() {
		counts[s.Name]++
	}
	if counts[obs.StageResolve] != 1 || counts[obs.StageSelect] != 1 {
		t.Fatalf("auto plan spans wrong: resolve=%d select=%d, want 1 each",
			counts[obs.StageResolve], counts[obs.StageSelect])
	}
}
