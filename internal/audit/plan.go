package audit

import (
	"context"
	"fmt"
	"iter"
	"math"

	"sanity/internal/obs"
	"sanity/internal/pipeline"
)

// Verdict is the per-trace audit outcome, streamed by Plan.Run in
// submission order.
type Verdict = pipeline.Verdict

// Results is a completed run: every verdict plus aggregate metrics.
type Results = pipeline.Results

// PlanInfo summarizes what a plan resolved to, before any replay is
// paid for.
type PlanInfo struct {
	// Shards and Jobs count the resolved population.
	Shards, Jobs int
	// Window echoes the plan's window policy.
	Window Window
	// Narrowed counts the jobs whose audit the prefilter narrowed to
	// a flagged window (auto mode only).
	Narrowed int
	// Seeded counts the narrowed jobs whose window came from a
	// decisive triage hint, skipping the full sliding scan
	// (WithWindowSeed only).
	Seeded int
	// AuditIPDs and TotalIPDs compare the planned TDR coverage
	// against whole-trace audits, over the jobs whose delays the
	// planner has seen (auto mode loads every job's IPDs; the other
	// modes leave both zero rather than guess).
	AuditIPDs, TotalIPDs int64
}

// Plan is a resolved audit: shards mapped onto known-good material,
// calibration applied, windows selected. Build one with
// Auditor.Plan; run it (any number of times) with Run or RunAll.
type Plan struct {
	auditor *Auditor
	cfg     pipeline.Config
	batch   *pipeline.Batch
	info    PlanInfo
}

// Plan resolves an audit over the given source: the source's shards
// against the auditor's registry (and, cross-machine, its calibration
// models), then — under WindowAuto — each trace's audited IPD range
// via the statistical prefilter. A nil source selects the auditor's
// WithStore directory. Resolution failures are typed: errors.Is
// distinguishes an unknown program, an uncalibrated machine pair, and
// a canceled context.
func (a *Auditor) Plan(ctx context.Context, src Source) (*Plan, error) {
	if src == nil {
		if a.storeDir == "" {
			return nil, fmt.Errorf("audit: no source given and no WithStore default configured")
		}
		src = Dir(a.storeDir)
	}
	rctx, resolveSpan := obs.StartSpan(ctx, obs.StageResolve)
	b, err := src.Batch(rctx, a.shardResolver())
	resolveSpan.End()
	if err != nil {
		return nil, err
	}
	p := &Plan{
		auditor: a,
		cfg:     a.pipelineConfig(),
		batch:   b,
		info:    PlanInfo{Shards: len(b.Shards), Jobs: len(b.Jobs), Window: a.window},
	}
	a.report(Progress{Stage: "resolve", Done: len(b.Shards), Total: len(b.Shards)})
	if a.window.Mode == ModeAuto {
		sctx, selectSpan := obs.StartSpan(ctx, obs.StageSelect)
		err := p.selectWindows(sctx)
		selectSpan.End()
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Info reports what the plan resolved to.
func (p *Plan) Info() PlanInfo { return p.info }

// Batch exposes the resolved pipeline batch — the bridge for callers
// migrating from the legacy pipeline surface.
func (p *Plan) Batch() *pipeline.Batch { return p.batch }

// selectWindows runs the auto-window prefilter over every job: a
// selector is trained once per shard on its benign traces, each
// job's delays are scanned (through the cheap IPD-only loader when
// the job streams from a store), and the flagged range — or, when
// nothing stands out, explicit whole-trace coverage — lands in
// Job.Window. Every job gets an explicit window: under auto mode the
// pipeline's trailing default must never apply, because "the
// statistics saw nothing" means full coverage, not less. The jobs
// slice is copied first, so planning never mutates a source's batch
// (an in-memory batch may feed several plans with different window
// policies).
func (p *Plan) selectWindows(ctx context.Context) error {
	p.batch = &pipeline.Batch{
		Shards: p.batch.Shards,
		Jobs:   append([]pipeline.Job(nil), p.batch.Jobs...),
	}
	selectors := make(map[string]*Selector, len(p.batch.Shards))
	for key, sh := range p.batch.Shards {
		sel, err := NewSelector(sh.Training, p.auditor.window.IPDs)
		if err != nil {
			// A shard without a learnable baseline audits whole; that
			// is a property of the corpus, not a planning failure.
			sel = nil
		}
		selectors[key] = sel
	}
	for i := range p.batch.Jobs {
		if err := ctx.Err(); err != nil {
			return &pipeline.CanceledError{Cause: context.Cause(ctx)}
		}
		job := &p.batch.Jobs[i]
		ipds, err := jobIPDs(job)
		if err != nil {
			return fmt.Errorf("audit: planning windows for job %q: %w", job.ID, err)
		}
		full := pipeline.IPDWindow{From: 0, To: len(ipds)}
		job.Window = &full
		var ex *pipeline.Explain
		if p.auditor.explain {
			ex = &pipeline.Explain{WindowMode: "auto"}
			job.Explain = ex
		}
		if sel := selectors[job.Shard]; sel != nil {
			seeded := false
			// Seeded fast path: when the trace carries a triage hint and
			// the hinted region is decisive on its own, take it and skip
			// the sliding scan. An indecisive hint falls through to the
			// full scan, so seeding never audits wider than scanning.
			if p.auditor.seedWindow && job.TriageHint != nil {
				if ws, ok := sel.SeedZ(ipds, *job.TriageHint); ok && math.Abs(ws.Z) >= decisiveZ {
					w := pipeline.IPDWindow{From: ws.From, To: ws.To}
					job.Window = &w
					p.info.Narrowed++
					p.info.Seeded++
					seeded = true
					if ex != nil {
						ex.SelectedZ = ws.Z
						ex.WindowReason = fmt.Sprintf("triage seed: window [%d,%d) sits |z|=%.2f from the benign baseline (threshold %.1f); sliding scan skipped", w.From, w.To, math.Abs(ws.Z), decisiveZ)
					}
				}
			}
			if !seeded {
				scan := sel.Scan(ipds)
				if ex != nil {
					ex.Windows = scan
				}
				if w, bestZ, ok := pickWindow(scan); ok {
					job.Window = &w
					p.info.Narrowed++
					if ex != nil {
						ex.SelectedZ = signedZ(scan, w, bestZ)
						ex.WindowReason = fmt.Sprintf("CCE prefilter: window [%d,%d) sits |z|=%.2f from the benign baseline (threshold %.1f)", w.From, w.To, bestZ, decisiveZ)
					}
				} else if ex != nil {
					ex.WindowReason = fmt.Sprintf("no window's CCE cleared |z| >= %.1f; audited whole", decisiveZ)
				}
			}
		} else if ex != nil {
			ex.WindowReason = "shard has no learnable benign baseline; audited whole"
		}
		p.info.AuditIPDs += int64(job.Window.To - job.Window.From)
		p.info.TotalIPDs += int64(len(ipds))
		p.auditor.report(Progress{Stage: "select", Done: i + 1, Total: len(p.batch.Jobs)})
	}
	return nil
}

// signedZ recovers the selected window's signed z-score from the
// scan (pickWindow works in absolute values).
func signedZ(scan []pipeline.WindowScore, w pipeline.IPDWindow, abs float64) float64 {
	for _, ws := range scan {
		if ws.From == w.From && ws.To == w.To {
			return ws.Z
		}
	}
	return abs
}

// jobIPDs fetches a job's delays as cheaply as the job allows: the
// in-memory trace, the IPD-only loader, or (last resort) a full load.
func jobIPDs(job *pipeline.Job) ([]int64, error) {
	if job.Trace != nil {
		return job.Trace.IPDs, nil
	}
	if job.LoadIPDs != nil {
		return job.LoadIPDs()
	}
	tr, err := job.Load()
	if err != nil {
		return nil, err
	}
	if tr == nil {
		return nil, fmt.Errorf("loader returned no trace")
	}
	return tr.IPDs, nil
}

// Run starts the audit and streams verdicts in submission order as
// an iterator: `for v, err := range plan.Run(ctx)`. A non-nil error
// is the final element — a canceled run yields its partial, in-order
// verdicts first, then one error matching ErrCanceled. Breaking out
// of the loop cancels the run and reclaims every pipeline goroutine
// before the iterator returns.
func (p *Plan) Run(ctx context.Context) iter.Seq2[Verdict, error] {
	return func(yield func(Verdict, error) bool) {
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		s, err := pipeline.New(p.cfg).GoContext(ctx, p.batch)
		if err != nil {
			yield(Verdict{}, err)
			return
		}
		emitted := 0
		for v := range s.Verdicts {
			if !yield(v, nil) {
				// Consumer stopped: cancel and drain so the worker
				// pool, scheduler, and collector all exit.
				cancel()
				s.Wait()
				return
			}
			emitted++
			p.auditor.report(Progress{Stage: "audit", Done: emitted, Total: len(p.batch.Jobs)})
		}
		s.Wait()
		if err := s.Err(); err != nil {
			yield(Verdict{}, err)
		}
	}
}

// RunAll audits the whole plan and returns the collected results. On
// cancellation the partial results come back along with an error
// matching ErrCanceled.
func (p *Plan) RunAll(ctx context.Context) (*Results, error) {
	s, err := pipeline.New(p.cfg).GoContext(ctx, p.batch)
	if err != nil {
		return nil, err
	}
	emitted := 0
	for range s.Verdicts {
		emitted++
		p.auditor.report(Progress{Stage: "audit", Done: emitted, Total: len(p.batch.Jobs)})
	}
	r := s.Wait()
	return r, s.Err()
}
