package audit

import (
	"fmt"

	"sanity/internal/calib"
	"sanity/internal/core"
	"sanity/internal/hw"
	"sanity/internal/pipeline"
	"sanity/internal/store"
	"sanity/internal/svm"
)

// Registry maps a program name onto the auditor's own known-good
// material: the trusted binary and the canonical replay configuration
// (machine, profile, file store) for that program. A corpus only
// *names* programs — binaries and environments are code the auditor
// already has, never data it accepts from a recording (paper §5.3).
// A program the registry does not carry must fail with an error
// matching the caller's unknown-program sentinel (the fixture
// registry returns fixtures.ErrUnknownShard).
type Registry func(program string, seed uint64) (*svm.Program, core.Config, error)

// ResolverFrom builds the same-machine shard resolver over a
// registry: the stored shard's program resolves to the known-good
// binary, and the corpus must agree with the registry about the
// machine and profile names — a mismatch is refused here, not
// discovered as a replay failure later. This is the one resolution
// path every audit mode shares; the calibrated variant only changes
// how a machine mismatch is bridged.
func ResolverFrom(reg Registry) pipeline.ShardResolver {
	return func(m store.ShardMeta) (pipeline.Resolved, error) {
		prog, cfg, err := reg(m.Program, m.Seed)
		if err != nil {
			return pipeline.Resolved{}, err
		}
		if cfg.Machine.Name != m.Machine {
			return pipeline.Resolved{}, fmt.Errorf("audit: shard %q wants machine %q, registry has %q for %s", m.Key, m.Machine, cfg.Machine.Name, m.Program)
		}
		if cfg.Profile.Name != m.Profile {
			return pipeline.Resolved{}, profileMismatch(m)
		}
		return pipeline.Resolved{Prog: prog, Cfg: cfg}, nil
	}
}

// CalibratedResolverFrom builds the cross-machine resolver over a
// registry: the auditor owns machines of type `auditor` only, and
// models carries the fitted time-dilation calibrations. Shards
// recorded on the auditor's own machine type resolve as usual; shards
// recorded on a different type resolve to the auditor's machine plus
// the pair's fitted scale and slack — and refuse, with the typed
// calib.ErrNoModel, any pair that was never calibrated, so an
// uncalibrated cross-machine audit can never produce silent garbage
// verdicts. A nil models set behaves as an empty one: every
// cross-machine pair is refused.
func CalibratedResolverFrom(reg Registry, auditor hw.MachineSpec, models *calib.Set) pipeline.ShardResolver {
	return func(m store.ShardMeta) (pipeline.Resolved, error) {
		prog, cfg, err := reg(m.Program, m.Seed)
		if err != nil {
			return pipeline.Resolved{}, err
		}
		if cfg.Profile.Name != m.Profile {
			return pipeline.Resolved{}, profileMismatch(m)
		}
		cfg.Machine = auditor
		if m.Machine == auditor.Name {
			return pipeline.Resolved{Prog: prog, Cfg: cfg}, nil
		}
		mod := models.Lookup(m.Program, m.Machine, auditor.Name)
		if mod == nil {
			return pipeline.Resolved{}, &calib.NoModelError{Program: m.Program, Recorded: m.Machine, Auditor: auditor.Name}
		}
		return pipeline.Resolved{Prog: prog, Cfg: cfg, TDRCalib: mod.Calibration(), TDRSlack: mod.Slack()}, nil
	}
}

// profileMismatch is the shared refusal for a corpus that names a
// noise profile the registry's configuration does not run.
func profileMismatch(m store.ShardMeta) error {
	return fmt.Errorf("audit: shard %q wants profile %q, which is not the registry's profile for %s", m.Key, m.Profile, m.Program)
}
