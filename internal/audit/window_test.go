package audit_test

import (
	"errors"
	"testing"

	"sanity/internal/audit"
	"sanity/internal/covert"
	"sanity/internal/fixtures"
)

// TestSelectWindowFlagsRegularChannel: an IPCTC-modulated trace is
// decisively regular; the prefilter must flag a window, and the
// flagged window must sit inside the trace.
func TestSelectWindowFlagsRegularChannel(t *testing.T) {
	const packets = 220
	training := fixtures.SyntheticTraining(6, packets, 42)
	ch := covert.NewIPCTC()
	ipds := fixtures.SyntheticCovertIPDs(ch, packets, 99)

	w, ok, err := audit.SelectWindow(training, ipds, 48)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("prefilter did not flag an IPCTC trace — its windows should be decisively low-entropy")
	}
	if w.From < 0 || w.To > len(ipds) || w.To-w.From != 48 {
		t.Fatalf("flagged window [%d,%d) out of bounds for %d IPDs", w.From, w.To, len(ipds))
	}
}

// TestSelectWindowLeavesBenignWhole: a benign trace must not be
// narrowed — absence of statistical evidence buys no audit discount.
func TestSelectWindowLeavesBenignWhole(t *testing.T) {
	const packets = 220
	training := fixtures.SyntheticTraining(6, packets, 42)
	benign := fixtures.SyntheticIPDs(packets, 4242)

	_, ok, err := audit.SelectWindow(training, benign, 48)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("prefilter narrowed a benign trace drawn from the training distribution")
	}
}

// TestSelectWindowDeterministic: same inputs, same window — the
// prefilter feeds a determinism-pinned pipeline and must itself be a
// pure function.
func TestSelectWindowDeterministic(t *testing.T) {
	training := fixtures.SyntheticTraining(6, 220, 42)
	ipds := fixtures.SyntheticCovertIPDs(covert.NewIPCTC(), 220, 7)
	w1, ok1, err1 := audit.SelectWindow(training, ipds, 48)
	w2, ok2, err2 := audit.SelectWindow(training, ipds, 48)
	if w1 != w2 || ok1 != ok2 || (err1 == nil) != (err2 == nil) {
		t.Fatalf("selection not deterministic: %+v/%v vs %+v/%v", w1, ok1, w2, ok2)
	}
}

// TestSelectWindowShortTrace: a trace that fits inside one window is
// never narrowed (there is nothing to skip).
func TestSelectWindowShortTrace(t *testing.T) {
	training := fixtures.SyntheticTraining(6, 220, 42)
	short := fixtures.SyntheticIPDs(30, 3)
	_, ok, err := audit.SelectWindow(training, short, 48)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("prefilter narrowed a trace shorter than one window")
	}
}

// TestSelectWindowTypedErrors: selection that cannot run at all fails
// with the typed ErrNoWindow.
func TestSelectWindowTypedErrors(t *testing.T) {
	ipds := fixtures.SyntheticIPDs(220, 3)
	for name, call := range map[string]func() error{
		"no training": func() error {
			_, _, err := audit.SelectWindow(nil, ipds, 48)
			return err
		},
		"nonpositive size": func() error {
			_, _, err := audit.SelectWindow(fixtures.SyntheticTraining(4, 220, 1), ipds, 0)
			return err
		},
		"training shorter than a window": func() error {
			_, _, err := audit.SelectWindow(fixtures.SyntheticTraining(4, 20, 1), ipds, 48)
			return err
		},
	} {
		err := call()
		if !errors.Is(err, audit.ErrNoWindow) {
			t.Fatalf("%s: err = %v, want ErrNoWindow", name, err)
		}
		var typed *audit.NoWindowError
		if !errors.As(err, &typed) || typed.Reason == "" {
			t.Fatalf("%s: errors.As lost the reason: %v", name, err)
		}
	}
}

// TestWindowConstructors: the three policy constructors produce the
// documented modes and defaults.
func TestWindowConstructors(t *testing.T) {
	if w := audit.WindowFull(); w.Mode != audit.ModeFull {
		t.Fatalf("WindowFull mode = %v", w.Mode)
	}
	if w := audit.WindowTrailing(16); w.Mode != audit.ModeTrailing || w.IPDs != 16 {
		t.Fatalf("WindowTrailing = %+v", w)
	}
	// The legacy knob's zero meant "whole trace": a mechanical
	// migration must not silently narrow coverage.
	if w := audit.WindowTrailing(0); w.Mode != audit.ModeFull {
		t.Fatalf("WindowTrailing(0) = %+v, want full coverage", w)
	}
	if w := audit.WindowAuto(0); w.Mode != audit.ModeAuto || w.IPDs != audit.DefaultAutoWindowIPDs {
		t.Fatalf("WindowAuto default = %+v", w)
	}
	for mode, want := range map[audit.WindowMode]string{
		audit.ModeFull: "full", audit.ModeTrailing: "trailing", audit.ModeAuto: "auto",
	} {
		if mode.String() != want {
			t.Fatalf("mode %d renders %q, want %q", mode, mode.String(), want)
		}
	}
}
