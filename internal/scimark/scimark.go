// Package scimark reproduces the computational workload of the
// paper's speed and stability experiments (§6.2, §6.3): the five
// kernels of NIST's SciMark 2.0 benchmark — fast Fourier transform
// (FFT), Jacobi successive over-relaxation (SOR), Monte Carlo
// integration (MC), sparse matrix multiply (SMM), and LU
// factorization (LU).
//
// Each kernel exists twice: as SVM assembly (interpreted by the
// Sanity VM, with or without the hardware timing model) and as a Go
// function with identical operation order (the natively-compiled
// "Oracle-JIT" stand-in). The two produce bit-identical checksums,
// which the tests verify — a strong cross-check on both the kernels
// and the VM's arithmetic.
package scimark

import (
	"fmt"
	"math"
	"sync"

	"sanity/internal/asm"
	"sanity/internal/hw"
	"sanity/internal/svm"
)

// Kernel is one SciMark benchmark kernel.
type Kernel struct {
	// Name is the paper's kernel label (SOR, SMM, MC, FFT, LU).
	Name string
	// Source is the SVM assembly.
	Source string
	// Native is the Go twin returning the same checksum.
	Native func() float64
}

var (
	kernelsOnce sync.Once
	kernelsMemo []Kernel
	progCache   map[string]*svm.Program
)

// Kernels returns the five kernels in the paper's Table 2 order.
func Kernels() []Kernel {
	kernelsOnce.Do(func() {
		kernelsMemo = []Kernel{
			{Name: "SOR", Source: sorSource(), Native: nativeSOR},
			{Name: "SMM", Source: smmSource(), Native: nativeSMM},
			{Name: "MC", Source: mcSource(), Native: nativeMC},
			{Name: "FFT", Source: fftSource(), Native: nativeFFT},
			{Name: "LU", Source: luSource(), Native: nativeLU},
		}
		progCache = make(map[string]*svm.Program, len(kernelsMemo))
		for _, k := range kernelsMemo {
			progCache[k.Name] = asm.MustAssemble(k.Name, k.Source)
		}
	})
	return kernelsMemo
}

// KernelByName finds a kernel.
func KernelByName(name string) (Kernel, error) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("scimark: unknown kernel %q", name)
}

// Program returns the assembled program of a kernel.
func Program(k Kernel) *svm.Program {
	Kernels()
	return progCache[k.Name]
}

// MathNatives provides the trigonometric primitives the FFT kernel
// links against. Each call charges a fixed cycle cost, like a tuned
// libm routine.
func MathNatives() map[string]svm.NativeFunc {
	one := func(f func(float64) float64) svm.NativeFunc {
		return func(ctx *svm.NativeCtx) error {
			if len(ctx.Args) != 1 || ctx.Args[0].K != svm.KFloat {
				return fmt.Errorf("math native needs one float argument")
			}
			if ctx.VM.Platform != nil {
				ctx.VM.Platform.AddCycles(80)
			}
			ctx.Result = svm.FloatV(f(ctx.Args[0].F))
			return nil
		}
	}
	return map[string]svm.NativeFunc{
		"math.sin":  one(math.Sin),
		"math.cos":  one(math.Cos),
		"math.sqrt": one(math.Sqrt),
	}
}

// Result is the outcome of one kernel run.
type Result struct {
	Checksum     float64
	Instructions int64
	Cycles       int64 // 0 in plain mode
}

// RunVM executes a kernel on the Sanity VM. A nil platform runs in
// plain functional mode (the Oracle-INT analog: interpretation with
// no TDR bookkeeping); a non-nil platform runs the full timed
// configuration.
func RunVM(k Kernel, plat *hw.Platform) (Result, error) {
	prog := Program(k)
	vm, err := svm.New(prog, MathNatives(), svm.Config{
		Platform: plat,
		MaxSteps: 2_000_000_000,
	})
	if err != nil {
		return Result{}, err
	}
	var c0 int64
	if plat != nil {
		plat.Initialize()
		c0 = plat.Cycles()
	}
	if err := vm.Run(); err != nil {
		return Result{}, err
	}
	gi, ok := prog.GlobalIndex("out")
	if !ok {
		return Result{}, fmt.Errorf("scimark: kernel %s has no out global", k.Name)
	}
	res := Result{
		Checksum:     vm.Globals[gi].F,
		Instructions: vm.InstrCount,
	}
	if plat != nil {
		res.Cycles = plat.Cycles() - c0
	}
	return res, nil
}
