package scimark

import (
	"math"
	"testing"

	"sanity/internal/hw"
)

func TestKernelsAssemble(t *testing.T) {
	ks := Kernels()
	if len(ks) != 5 {
		t.Fatalf("kernels = %d, want 5", len(ks))
	}
	for _, k := range ks {
		if Program(k) == nil {
			t.Fatalf("kernel %s has no program", k.Name)
		}
	}
}

// TestVMMatchesNative is the central cross-check: the interpreted
// assembly and the natively compiled Go twin must produce the same
// checksum bit for bit, because they execute the same floating-point
// operations in the same order.
func TestVMMatchesNative(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			res, err := RunVM(k, nil)
			if err != nil {
				t.Fatalf("vm run: %v", err)
			}
			native := k.Native()
			if res.Checksum != native {
				t.Fatalf("VM checksum %v != native %v (diff %g)", res.Checksum, native, res.Checksum-native)
			}
			if res.Instructions == 0 {
				t.Fatal("no instructions executed")
			}
		})
	}
}

func TestMCEstimatesPi(t *testing.T) {
	got := nativeMC()
	if math.Abs(got-math.Pi) > 0.1 {
		t.Fatalf("MC pi estimate %v too far from pi", got)
	}
}

func TestFFTRoundTripIsIdentity(t *testing.T) {
	// Independent validation of the FFT algorithm (not just the
	// VM-vs-native equality): transform then inverse-transform must
	// return the input.
	n := 64
	orig := make([]float64, 2*n)
	for i := range orig {
		orig[i] = float64((int64(i)*92821)&255) / 256.0
	}
	d := append([]float64(nil), orig...)
	fftTransform(d, n, -1)
	fftTransform(d, n, 1)
	for i := range d {
		d[i] /= float64(n)
	}
	for i := range d {
		if math.Abs(d[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip diverges at %d: %v vs %v", i, d[i], orig[i])
		}
	}
}

func TestFFTImpulseIsFlat(t *testing.T) {
	// The spectrum of a unit impulse is all-ones: a classic analytic
	// check that the butterflies and twiddles are right.
	n := 32
	d := make([]float64, 2*n)
	d[0] = 1
	fftTransform(d, n, -1)
	for i := 0; i < n; i++ {
		if math.Abs(d[2*i]-1) > 1e-9 || math.Abs(d[2*i+1]) > 1e-9 {
			t.Fatalf("impulse spectrum wrong at bin %d: (%v, %v)", i, d[2*i], d[2*i+1])
		}
	}
}

func TestFFTSinusoidPeaks(t *testing.T) {
	// A pure cosine at bin k concentrates energy at bins k and n-k.
	n := 64
	k := 5
	d := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		d[2*i] = math.Cos(2 * math.Pi * float64(k) * float64(i) / float64(n))
	}
	fftTransform(d, n, -1)
	for b := 0; b < n; b++ {
		mag := math.Hypot(d[2*b], d[2*b+1])
		if b == k || b == n-k {
			if math.Abs(mag-float64(n)/2) > 1e-6 {
				t.Fatalf("bin %d magnitude %v, want %v", b, mag, float64(n)/2)
			}
		} else if mag > 1e-6 {
			t.Fatalf("leakage at bin %d: %v", b, mag)
		}
	}
}

func TestLUFactorizationCorrect(t *testing.T) {
	// Verify L*U reconstructs the original matrix (no pivoting, the
	// test matrix is diagonally dominant).
	n := LUSize
	orig := make([]float64, n*n)
	for i := range orig {
		orig[i] = float64((int64(i)*2654435761)&255) / 256.0
	}
	for i := 0; i < n; i++ {
		orig[i*n+i] += float64(n)
	}
	a := append([]float64(nil), orig...)
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			a[i*n+k] /= a[k*n+k]
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= a[i*n+k] * a[k*n+j]
			}
		}
	}
	// Reconstruct and compare a few entries.
	for i := 0; i < n; i += 7 {
		for j := 0; j < n; j += 5 {
			var sum float64
			for k := 0; k <= i && k <= j; k++ {
				l := a[i*n+k]
				if k == i {
					l = 1
				}
				sum += l * a[k*n+j]
			}
			if math.Abs(sum-orig[i*n+j]) > 1e-8 {
				t.Fatalf("LU reconstruction off at (%d,%d): %v vs %v", i, j, sum, orig[i*n+j])
			}
		}
	}
}

func TestTimedRunChargesCycles(t *testing.T) {
	k, err := KernelByName("SOR")
	if err != nil {
		t.Fatal(err)
	}
	plat := hw.MustNewPlatform(hw.Optiplex9020(), hw.ProfileSanity(), 1)
	res, err := RunVM(k, plat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < res.Instructions {
		t.Fatalf("cycles %d below instructions %d", res.Cycles, res.Instructions)
	}
	// Timed and plain modes must compute the same checksum.
	plain, err := RunVM(k, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Checksum != res.Checksum {
		t.Fatal("timed mode changed the result")
	}
}

func TestTimedRunsStableUnderSanityProfile(t *testing.T) {
	// Figure 6's key claim, in miniature: under the Sanity profile,
	// per-seed cycle counts vary by well under 2%.
	k, err := KernelByName("MC")
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi int64 = math.MaxInt64, 0
	for seed := uint64(0); seed < 5; seed++ {
		plat := hw.MustNewPlatform(hw.Optiplex9020(), hw.ProfileSanity(), seed)
		res, err := RunVM(k, plat)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles < lo {
			lo = res.Cycles
		}
		if res.Cycles > hi {
			hi = res.Cycles
		}
	}
	if rel := float64(hi-lo) / float64(lo); rel > 0.02 {
		t.Fatalf("sanity-profile variance %.4f above 2%%", rel)
	}
}

func TestKernelByNameUnknown(t *testing.T) {
	if _, err := KernelByName("NOPE"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}
