package scimark

import "math"

// The functions in this file are the Go twins of the assembly
// kernels: the same algorithms with the same constants and the same
// operation order, so their results match the VM's bit for bit. They
// serve two purposes: they cross-check the assembly (any divergence
// is a bug in one of the two), and they stand in for the Oracle-JIT
// configuration in Table 2 (natively compiled execution of the same
// kernel).

// nativeSOR mirrors sorSource.
func nativeSOR() float64 {
	size := SORSize
	g := make([]float64, size*size)
	for i := range g {
		g[i] = float64((int64(i)*2654435761)&1023) / 1024.0
	}
	for p := 0; p < SORIters; p++ {
		for i := 1; i < size-1; i++ {
			for j := 1; j < size-1; j++ {
				idx := i*size + j
				g[idx] = (g[idx-size]+g[idx+size]+g[idx-1]+g[idx+1])*0.3125 + g[idx]*-0.25
			}
		}
	}
	var sum float64
	for _, v := range g {
		sum += v
	}
	return sum
}

// nativeMC mirrors mcSource, including the exact LCG stream.
func nativeMC() float64 {
	seed := int64(lcgSeed)
	next := func() float64 {
		seed = (seed*lcgA + lcgC) & lcgMask
		return float64(seed>>16) / 4294967296.0
	}
	under := 0
	for i := 0; i < MCPoints; i++ {
		x := next()
		y := next()
		if x*x+y*y <= 1.0 {
			under++
		}
	}
	return float64(under) * 4.0 / float64(MCPoints)
}

// nativeSMM mirrors smmSource.
func nativeSMM() float64 {
	nnz := SMMRows * SMMNzRow
	val := make([]float64, nnz)
	col := make([]int64, nnz)
	x := make([]float64, SMMRows)
	y := make([]float64, SMMRows)
	for i := 0; i < nnz; i++ {
		val[i] = float64(int64(i)%7+1) * 0.5
		col[i] = (int64(i)*1031 + int64(i/SMMNzRow)) % SMMRows
	}
	for i := 0; i < SMMRows; i++ {
		x[i] = float64(int64(i)&15+1) * 0.25
	}
	for t := 0; t < SMMIters; t++ {
		for r := 0; r < SMMRows; r++ {
			var acc float64
			for k := 0; k < SMMNzRow; k++ {
				idx := r*SMMNzRow + k
				acc += val[idx] * x[col[idx]]
			}
			y[r] = acc
		}
	}
	var sum float64
	for _, v := range y {
		sum += v
	}
	return sum
}

// nativeLU mirrors luSource.
func nativeLU() float64 {
	n := LUSize
	a := make([]float64, n*n)
	for i := range a {
		a[i] = float64((int64(i)*2654435761)&255) / 256.0
	}
	for i := 0; i < n; i++ {
		a[i*n+i] += float64(n)
	}
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			a[i*n+k] /= a[k*n+k]
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= a[i*n+k] * a[k*n+j]
			}
		}
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += a[i*n+i]
	}
	return sum
}

// twoPiLiteral matches the fconst in fftSource exactly: both are
// parsed from the same decimal literal.
const twoPiLiteral = -6.283185307179586

// fftTransform mirrors the transform function of fftSource.
func fftTransform(d []float64, n int, dir int64) {
	// Bit-reversal permutation.
	j := 0
	for i := 0; i < n-1; i++ {
		if i < j {
			d[2*i], d[2*j] = d[2*j], d[2*i]
			d[2*i+1], d[2*j+1] = d[2*j+1], d[2*i+1]
		}
		m := n / 2
		for m >= 1 && j >= m {
			j -= m
			m >>= 1
		}
		j += m
	}
	for le := 2; le <= n; le <<= 1 {
		half := le >> 1
		for k := 0; k < half; k++ {
			angle := float64(k) * twoPiLiteral
			angle = angle / float64(le)
			angle = angle * float64(-dir)
			wr := math.Cos(angle)
			wi := math.Sin(angle)
			for i := k; i < n; i += le {
				jj := i + half
				tr := wr*d[2*jj] - wi*d[2*jj+1]
				ti := wr*d[2*jj+1] + wi*d[2*jj]
				d[2*jj] = d[2*i] - tr
				d[2*jj+1] = d[2*i+1] - ti
				d[2*i] += tr
				d[2*i+1] += ti
			}
		}
	}
}

// nativeFFT mirrors fftSource: forward transform, spectrum sum,
// inverse transform with 1/N scaling, round-trip sum.
func nativeFFT() float64 {
	n := FFTSize
	d := make([]float64, 2*n)
	for i := range d {
		d[i] = float64((int64(i)*2654435761)&511) / 512.0
	}
	fftTransform(d, n, -1)
	var s1 float64
	for _, v := range d {
		s1 += v
	}
	fftTransform(d, n, 1)
	scale := 1.0 / float64(n)
	for i := range d {
		d[i] *= scale
	}
	var s2 float64
	for _, v := range d {
		s2 += v
	}
	return s1 + s2
}
