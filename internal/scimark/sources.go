package scimark

import "fmt"

// Problem sizes. They are scaled down from SciMark 2.0's defaults so
// that a full benchmark sweep (five kernels, three engines, many
// repetitions) completes quickly under the interpreting VM; the
// kernels themselves are the same algorithms.
const (
	SORSize  = 32
	SORIters = 20
	MCPoints = 20000
	SMMRows  = 256
	SMMNzRow = 8
	SMMIters = 20
	LUSize   = 32
	FFTSize  = 256
)

// LCG parameters shared by the VM and Go implementations of the Monte
// Carlo kernel (java.util.Random's multiplier, for flavor).
const (
	lcgA    = 25214903917
	lcgC    = 11
	lcgMask = (1 << 48) - 1
	lcgSeed = 20011
)

// sorSource is the Jacobi successive over-relaxation kernel: a
// five-point stencil swept over a SIZE x SIZE grid.
func sorSource() string {
	size := SORSize
	return fmt.Sprintf(`
.program sor
.global out
.func main 0 6
    iconst %[1]d        ; SIZE*SIZE
    newarr float
    store 0
    iconst 0
    store 2
init:
    load 2
    iconst %[1]d
    if_icmpge initdone
    load 0
    load 2
    load 2
    lconst 2654435761
    imul
    iconst 1023
    iand
    i2f
    fconst 1024.0
    fdiv
    astore
    iinc 2 1
    goto init
initdone:
    iconst 0
    store 1
piter:
    load 1
    iconst %[2]d        ; ITERS
    if_icmpge sumup
    iconst 1
    store 2
iloop:
    load 2
    iconst %[3]d        ; SIZE-1
    if_icmpge inext
    iconst 1
    store 3
jloop:
    load 3
    iconst %[3]d
    if_icmpge jnext
    load 2
    iconst %[4]d        ; SIZE
    imul
    load 3
    iadd
    store 4
    load 0
    load 4
    iconst %[4]d
    isub
    aload
    load 0
    load 4
    iconst %[4]d
    iadd
    aload
    fadd
    load 0
    load 4
    iconst 1
    isub
    aload
    fadd
    load 0
    load 4
    iconst 1
    iadd
    aload
    fadd
    fconst 0.3125       ; omega/4, omega = 1.25
    fmul
    load 0
    load 4
    aload
    fconst -0.25        ; 1 - omega
    fmul
    fadd
    store 5
    load 0
    load 4
    load 5
    astore
    iinc 3 1
    goto jloop
jnext:
    iinc 2 1
    goto iloop
inext:
    iinc 1 1
    goto piter
sumup:
    fconst 0
    store 5
    iconst 0
    store 2
sloop:
    load 2
    iconst %[1]d
    if_icmpge done
    load 5
    load 0
    load 2
    aload
    fadd
    store 5
    iinc 2 1
    goto sloop
done:
    load 5
    gput out
    ret
.end
`, size*size, SORIters, size-1, size)
}

// mcSource is the Monte Carlo pi integration with an inlined LCG, so
// the random stream is identical in the VM and Go implementations.
func mcSource() string {
	return fmt.Sprintf(`
.program mc
.global out
.func main 0 6
    lconst %[1]d        ; seed
    store 0
    iconst 0
    store 1
    iconst 0
    store 2
loop:
    load 1
    iconst %[2]d        ; N
    if_icmpge done
    load 0
    lconst %[3]d
    imul
    iconst %[4]d
    iadd
    lconst %[5]d
    iand
    store 0
    load 0
    iconst 16
    ishr
    i2f
    fconst 4294967296.0
    fdiv
    store 3
    load 0
    lconst %[3]d
    imul
    iconst %[4]d
    iadd
    lconst %[5]d
    iand
    store 0
    load 0
    iconst 16
    ishr
    i2f
    fconst 4294967296.0
    fdiv
    store 4
    load 3
    load 3
    fmul
    load 4
    load 4
    fmul
    fadd
    fconst 1.0
    fcmp
    ifgt skip
    iinc 2 1
skip:
    iinc 1 1
    goto loop
done:
    load 2
    i2f
    fconst 4.0
    fmul
    iconst %[2]d
    i2f
    fdiv
    gput out
    ret
.end
`, lcgSeed, MCPoints, lcgA, lcgC, lcgMask)
}

// smmSource is the sparse matrix multiply: a fixed-degree sparse
// matrix in row-major nonzero order, applied repeatedly to a vector.
func smmSource() string {
	return fmt.Sprintf(`
.program smm
.global out
.func main 0 9
    ; locals: 0=val 1=col 2=x 3=y 4=r 5=k 6=acc 7=iter 8=idx
    iconst %[1]d        ; ROWS*NZROW
    newarr float
    store 0
    iconst %[1]d
    newarr int
    store 1
    iconst %[2]d        ; ROWS
    newarr float
    store 2
    iconst %[2]d
    newarr float
    store 3
    iconst 0
    store 4
vinit:
    load 4
    iconst %[1]d
    if_icmpge cinitset
    load 0
    load 4
    load 4
    iconst 7
    irem
    iconst 1
    iadd
    i2f
    fconst 0.5
    fmul
    astore
    load 1
    load 4
    load 4
    iconst 1031
    imul
    load 4
    iconst %[3]d        ; NZROW
    idiv
    iadd
    iconst %[2]d
    irem
    astore
    iinc 4 1
    goto vinit
cinitset:
    iconst 0
    store 4
xinit:
    load 4
    iconst %[2]d
    if_icmpge iters
    load 2
    load 4
    load 4
    iconst 15
    iand
    iconst 1
    iadd
    i2f
    fconst 0.25
    fmul
    astore
    iinc 4 1
    goto xinit
iters:
    iconst 0
    store 7
titer:
    load 7
    iconst %[4]d        ; ITERS
    if_icmpge sumup
    iconst 0
    store 4
rloop:
    load 4
    iconst %[2]d
    if_icmpge tnext
    fconst 0
    store 6
    iconst 0
    store 5
kloop:
    load 5
    iconst %[3]d
    if_icmpge rdone
    load 4
    iconst %[3]d
    imul
    load 5
    iadd
    store 8
    load 6
    load 0
    load 8
    aload
    load 2
    load 1
    load 8
    aload
    aload
    fmul
    fadd
    store 6
    iinc 5 1
    goto kloop
rdone:
    load 3
    load 4
    load 6
    astore
    iinc 4 1
    goto rloop
tnext:
    iinc 7 1
    goto titer
sumup:
    fconst 0
    store 6
    iconst 0
    store 4
sloop:
    load 4
    iconst %[2]d
    if_icmpge done
    load 6
    load 3
    load 4
    aload
    fadd
    store 6
    iinc 4 1
    goto sloop
done:
    load 6
    gput out
    ret
.end
`, SMMRows*SMMNzRow, SMMRows, SMMNzRow, SMMIters)
}

// luSource is the LU factorization (Doolittle, no pivoting) of a
// diagonally dominant matrix; the checksum is the diagonal sum.
func luSource() string {
	n := LUSize
	return fmt.Sprintf(`
.program lu
.global out
.func main 0 9
    ; locals: 0=a 1=kk 2=i 3=j 4=tmpf 5=ik 6=kj 7=ij 8=diag-sum
    iconst %[1]d        ; N*N
    newarr float
    store 0
    iconst 0
    store 2
init:
    load 2
    iconst %[1]d
    if_icmpge diag
    load 0
    load 2
    load 2
    lconst 2654435761
    imul
    iconst 255
    iand
    i2f
    fconst 256.0
    fdiv
    astore
    iinc 2 1
    goto init
diag:
    iconst 0
    store 2
dloop:
    load 2
    iconst %[2]d        ; N
    if_icmpge factor
    load 2
    iconst %[2]d
    imul
    load 2
    iadd
    store 7
    load 0
    load 7
    load 0
    load 7
    aload
    fconst %[3]d.0      ; + N on the diagonal
    fadd
    astore
    iinc 2 1
    goto dloop
factor:
    iconst 0
    store 1
kloop:
    load 1
    iconst %[2]d
    if_icmpge sumdiag
    load 1
    iconst 1
    iadd
    store 2
iloop:
    load 2
    iconst %[2]d
    if_icmpge knext
    ; a[i*N+k] /= a[k*N+k]
    load 2
    iconst %[2]d
    imul
    load 1
    iadd
    store 5
    load 0
    load 5
    load 0
    load 5
    aload
    load 0
    load 1
    iconst %[2]d
    imul
    load 1
    iadd
    aload
    fdiv
    astore
    ; for j in k+1..N-1: a[i*N+j] -= a[i*N+k]*a[k*N+j]
    load 1
    iconst 1
    iadd
    store 3
jloop:
    load 3
    iconst %[2]d
    if_icmpge inext
    load 2
    iconst %[2]d
    imul
    load 3
    iadd
    store 7
    load 1
    iconst %[2]d
    imul
    load 3
    iadd
    store 6
    load 0
    load 7
    load 0
    load 7
    aload
    load 0
    load 5
    aload
    load 0
    load 6
    aload
    fmul
    fsub
    astore
    iinc 3 1
    goto jloop
inext:
    iinc 2 1
    goto iloop
knext:
    iinc 1 1
    goto kloop
sumdiag:
    fconst 0
    store 4
    iconst 0
    store 2
sloop:
    load 2
    iconst %[2]d
    if_icmpge done
    load 4
    load 0
    load 2
    iconst %[2]d
    imul
    load 2
    iadd
    aload
    fadd
    store 4
    iinc 2 1
    goto sloop
done:
    load 4
    gput out
    ret
.end
`, n*n, n, n)
}

// fftSource is the radix-2 Cooley-Tukey FFT, forward then inverse,
// with twiddle factors from the math.cos/math.sin natives. The
// checksum combines the spectrum sum and the round-trip sum.
func fftSource() string {
	n := FFTSize
	return fmt.Sprintf(`
.program fft
.global data
.global out
.func main 0 4
    iconst %[1]d        ; 2*N interleaved re/im
    newarr float
    gput data
    iconst 0
    store 0
init:
    load 0
    iconst %[1]d
    if_icmpge go
    gget data
    load 0
    load 0
    lconst 2654435761
    imul
    iconst 511
    iand
    i2f
    fconst 512.0
    fdiv
    astore
    iinc 0 1
    goto init
go:
    iconst -1
    call transform
    call sumdata
    store 1             ; spectrum sum
    iconst 1
    call transform
    ; scale by 1/N
    iconst 0
    store 0
scale:
    load 0
    iconst %[1]d
    if_icmpge sum2
    gget data
    load 0
    gget data
    load 0
    aload
    fconst %[3]s
    fmul
    astore
    iinc 0 1
    goto scale
sum2:
    call sumdata
    store 2
    load 1
    load 2
    fadd
    gput out
    ret
.end

.func sumdata 0 3 retv
    fconst 0
    store 1
    iconst 0
    store 0
loop:
    load 0
    iconst %[1]d
    if_icmpge done
    load 1
    gget data
    load 0
    aload
    fadd
    store 1
    iinc 0 1
    goto loop
done:
    load 1
    retv
.end

; transform(dir): dir = -1 forward, +1 inverse.
.func transform 1 12
    ; locals: 0=dir 1=i 2=j 3=m 4=le 5=half 6=k 7=wr 8=wi 9=idx 10=tr 11=ti
    ; --- bit reversal permutation ---
    iconst 0
    store 2
    iconst 0
    store 1
brloop:
    load 1
    iconst %[4]d        ; N-1
    if_icmpge stages
    load 1
    load 2
    if_icmpge noswap
    ; swap complex i <-> j
    gget data
    load 1
    iconst 2
    imul
    aload
    store 10
    gget data
    load 1
    iconst 2
    imul
    gget data
    load 2
    iconst 2
    imul
    aload
    astore
    gget data
    load 2
    iconst 2
    imul
    load 10
    astore
    gget data
    load 1
    iconst 2
    imul
    iconst 1
    iadd
    aload
    store 10
    gget data
    load 1
    iconst 2
    imul
    iconst 1
    iadd
    gget data
    load 2
    iconst 2
    imul
    iconst 1
    iadd
    aload
    astore
    gget data
    load 2
    iconst 2
    imul
    iconst 1
    iadd
    load 10
    astore
noswap:
    iconst %[5]d        ; N/2
    store 3
whilem:
    load 3
    iconst 1
    if_icmplt madd
    load 2
    load 3
    if_icmplt madd
    load 2
    load 3
    isub
    store 2
    load 3
    iconst 1
    ishr
    store 3
    goto whilem
madd:
    load 2
    load 3
    iadd
    store 2
    iinc 1 1
    goto brloop
stages:
    iconst 2
    store 4
leloop:
    load 4
    iconst %[2]d        ; N
    if_icmpgt tdone
    load 4
    iconst 1
    ishr
    store 5
    iconst 0
    store 6
kfor:
    load 6
    load 5
    if_icmpge lenext
    ; angle = ((k * -2pi) / le) * dir
    load 6
    i2f
    fconst -6.283185307179586
    fmul
    load 4
    i2f
    fdiv
    load 0
    ineg
    i2f
    fmul
    store 10
    load 10
    ncall math.cos 1
    store 7
    load 10
    ncall math.sin 1
    store 8
    load 6
    store 1
ifor:
    load 1
    iconst %[2]d
    if_icmpge knext
    ; j = i + half
    load 1
    load 5
    iadd
    store 2
    ; tr = wr*d[2j] - wi*d[2j+1] ; ti = wr*d[2j+1] + wi*d[2j]
    load 7
    gget data
    load 2
    iconst 2
    imul
    aload
    fmul
    load 8
    gget data
    load 2
    iconst 2
    imul
    iconst 1
    iadd
    aload
    fmul
    fsub
    store 10
    load 7
    gget data
    load 2
    iconst 2
    imul
    iconst 1
    iadd
    aload
    fmul
    load 8
    gget data
    load 2
    iconst 2
    imul
    aload
    fmul
    fadd
    store 11
    ; d[2j] = d[2i] - tr ; d[2j+1] = d[2i+1] - ti
    gget data
    load 2
    iconst 2
    imul
    gget data
    load 1
    iconst 2
    imul
    aload
    load 10
    fsub
    astore
    gget data
    load 2
    iconst 2
    imul
    iconst 1
    iadd
    gget data
    load 1
    iconst 2
    imul
    iconst 1
    iadd
    aload
    load 11
    fsub
    astore
    ; d[2i] += tr ; d[2i+1] += ti
    gget data
    load 1
    iconst 2
    imul
    gget data
    load 1
    iconst 2
    imul
    aload
    load 10
    fadd
    astore
    gget data
    load 1
    iconst 2
    imul
    iconst 1
    iadd
    gget data
    load 1
    iconst 2
    imul
    iconst 1
    iadd
    aload
    load 11
    fadd
    astore
    load 1
    load 4
    iadd
    store 1
    goto ifor
knext:
    iinc 6 1
    goto kfor
lenext:
    load 4
    iconst 1
    ishl
    store 4
    goto leloop
tdone:
    ret
.end
`, 2*n, n, fftScaleLiteral, n-1, n/2)
}

// fftScaleLiteral is 1/FFTSize rendered exactly; FFTSize is a power
// of two so the literal is exact in binary floating point.
var fftScaleLiteral = fmt.Sprintf("%.10g", 1.0/float64(FFTSize))
