// Command tdrauditd is the audit service: one long-running process
// that accepts recorded corpora over the ingest protocol, audits each
// trace as it lands (statistical detectors plus time-deterministic
// replay against the known-good registry), and serves the verdicts —
// the paper's cloud-verification scenario run as a daemon instead of
// one-shot tdraudit invocations.
//
//	tdrauditd -dir spool                        # ingest :7070, http :7071
//	tdrauditd -dir spool -secret s3cret         # authenticated ingest
//	tdrauditd -dir spool -window auto -workers 8
//	tdrauditd -dir spool -trace-dir traces      # per-sweep Chrome traces
//	tdrauditd -dir spool -debug-addr :6060      # opt-in pprof
//
// Push work to it with `tdraudit send -addr host:7070 -dir corpus`;
// read results back over HTTP:
//
//	GET /verdicts                 NDJSON verdict log (add ?follow=1 to tail)
//	GET /corpora                  spool status: traces by audit state
//	GET /triage                   triage census: suspicion scores, bands, claim order
//	GET /metrics                  Prometheus text format
//	GET /healthz                  liveness (always 200 while serving)
//	GET /readyz                   readiness (503 before first sweep / while draining)
//	GET /logz?n=100               newest structured log records, NDJSON
//	GET /traces/{id}/timeline     one trace's audit life: state, verdict, spans
//
// SIGTERM (or Ctrl-C) shuts down in order: the ingest listener closes,
// the in-flight audit plan is canceled — its ordered verdict prefix is
// kept, unfinished traces stay claimed for the next start to reclaim —
// HTTP drains, and the manifest is flushed. A restarted daemon never
// re-audits a trace that already has a verdict.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sanity/internal/audit"
	"sanity/internal/daemon"
	"sanity/internal/fixtures"
	"sanity/internal/ingest"
	"sanity/internal/obs"
)

// logger is the process-wide structured logger; main replaces it once
// the -log-* flags are parsed.
var logger = slog.New(obs.NewLogHandler(os.Stderr, obs.LogOptions{}))

func main() {
	fs := flag.NewFlagSet("tdrauditd", flag.ExitOnError)
	dir := fs.String("dir", "", "spool/store directory the daemon owns (required; created if missing)")
	ingestAddr := fs.String("ingest", ":7070", "ingest listen address ('' disables the listener)")
	httpAddr := fs.String("http", ":7071", "HTTP listen address for /verdicts, /corpora, /metrics ('' disables)")
	secret := fs.String("secret", "", "shared secret ingest clients must present with AUTH (empty = open)")
	idle := fs.Duration("idle-timeout", 2*time.Minute, "cut ingest connections that make no progress for this long (0 = never)")
	maxTraces := fs.Int("max-traces-per-conn", 0, "per-connection trace quota (0 = unlimited)")
	maxBytes := fs.Int64("max-bytes-per-conn", 0, "per-connection payload-byte quota (0 = unlimited)")
	workers := fs.Int("workers", 0, "audit workers (0 = GOMAXPROCS)")
	segWorkers := fs.Int("segment-workers", 0, "goroutines per trace for checkpoint-parallel replay (0 or 1 = sequential)")
	threshold := fs.Float64("threshold", 0.05, "TDR suspicion threshold (max relative IPD deviation)")
	window := fs.String("window", "full", "replay-window policy: 'full', an IPD count N, or 'auto[:N]'")
	poll := fs.Duration("poll", 2*time.Second, "spool sweep interval between ingest notifications")
	triageOn := fs.Bool("triage", true, "score traces at ingest and claim pending audits in descending-suspicion order")
	claimBatch := fs.Int("claim-batch", 0, "traces claimed per sweep, highest suspicion first (0 = all pending)")
	agingBoost := fs.Float64("aging-boost", 0, "suspicion added per sweep a pending trace waits unclaimed (0 = default 0.05, negative disables aging)")
	triageSeed := fs.Bool("triage-seed", false, "let auto-window planning start from each trace's triage-flagged window (seeded verdict streams may differ bit-for-bit from unseeded ones)")
	traceDir := fs.String("trace-dir", "", "write per-sweep Chrome trace_event JSON and spans.ndjson here ('' disables tracing)")
	traceMaxBytes := fs.Int64("trace-max-bytes", obs.DefaultSpanLogMaxBytes, "rotate spans.ndjson when the active file exceeds this size")
	traceKeep := fs.Int("trace-keep", obs.DefaultSpanLogMaxFiles, "rotated spans.ndjson generations to keep")
	traceSample := fs.Int("trace-sample", 1, "keep 1 in N span trees in the persisted trace (1 = all; /metrics and timelines always see everything)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this address ('' disables; never exposed on -http)")
	logFormat := fs.String("log-format", "text", "log output format: 'text' or 'json'")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	logRing := fs.Int("log-ring", obs.DefaultLogRingLines, "log records retained in memory for GET /logz")
	drainGrace := fs.Duration("drain-grace", 0, "hold /readyz at 503 this long before shutdown teardown, letting load balancers shift traffic")
	fs.Parse(os.Args[1:])

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	logger = slog.New(obs.NewLogHandler(os.Stderr, obs.LogOptions{Format: *logFormat, Level: level}))
	if *dir == "" {
		fatal(fmt.Errorf("-dir is required"))
	}

	w, err := parseWindow(*window)
	if err != nil {
		fatal(err)
	}
	auditorOpts := []audit.Option{
		audit.WithRegistry(fixtures.KnownGood),
		audit.WithWorkers(*workers),
		audit.WithSegmentWorkers(*segWorkers),
		audit.WithThresholds(*threshold, 0),
		audit.WithWindow(w),
		audit.WithExplain(),
	}
	if *triageSeed {
		auditorOpts = append(auditorOpts, audit.WithWindowSeed())
	}
	auditor, err := audit.New(auditorOpts...)
	if err != nil {
		fatal(err)
	}

	d, err := daemon.New(daemon.Config{
		Dir:        *dir,
		Auditor:    auditor,
		IngestAddr: *ingestAddr,
		HTTPAddr:   *httpAddr,
		Ingest: ingest.Options{
			Secret:           *secret,
			MaxTracesPerConn: *maxTraces,
			MaxBytesPerConn:  *maxBytes,
			IdleTimeout:      *idle,
		},
		Poll:             *poll,
		DisableTriage:    !*triageOn,
		ClaimBatch:       *claimBatch,
		AgingBoost:       *agingBoost,
		TraceDir:         *traceDir,
		TraceRotateBytes: *traceMaxBytes,
		TraceRotateFiles: *traceKeep,
		TraceSample:      *traceSample,
		DebugAddr:        *debugAddr,
		Logger:           logger,
		LogRingSize:      *logRing,
		DrainGrace:       *drainGrace,
	})
	if err != nil {
		fatal(err)
	}

	// SIGTERM/Ctrl-C triggers the ordered shutdown; a second signal
	// kills the process the usual way (the registration drops once the
	// context dies).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := d.Run(ctx); err != nil {
		fatal(err)
	}
}

// parseWindow maps the -window flag onto a window policy (same
// grammar as tdraudit).
func parseWindow(s string) (audit.Window, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "" || s == "full" || s == "0":
		return audit.WindowFull(), nil
	case s == "auto":
		return audit.WindowAuto(0), nil
	case strings.HasPrefix(s, "auto:"):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "auto:"))
		if err != nil || n <= 0 {
			return audit.Window{}, fmt.Errorf("bad -window %q: auto:N needs a positive IPD count", s)
		}
		return audit.WindowAuto(n), nil
	default:
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return audit.Window{}, fmt.Errorf("bad -window %q: want 'full', an IPD count, or 'auto[:N]'", s)
		}
		if n == 0 {
			return audit.WindowFull(), nil
		}
		return audit.WindowTrailing(n), nil
	}
}

func fatal(err error) {
	logger.Error("tdrauditd failed", "err", err)
	os.Exit(1)
}
