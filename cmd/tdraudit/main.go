// Command tdraudit runs the concurrent multi-trace audit pipeline.
// Besides the original in-memory mode, it speaks the persistent trace
// store and the ingest protocol, so the play side and the audit side
// can run as separate processes (or separate machines):
//
//	tdraudit                            # in-memory corpus, all CPUs
//	tdraudit -traces 240 -workers 4     # fixed pool
//	tdraudit -stream -json              # machine-readable verdict stream
//	tdraudit -compare                   # also run 1 worker, report speedup
//
//	tdraudit record -dir corpus         # record a labeled corpus to disk
//	tdraudit record -dir corpus -hetero # two shards: nfsd/T and echod/T'
//	tdraudit serve -addr :7070 -dir spool      # audit-side ingest server
//	tdraudit send -addr host:7070 -dir corpus  # ship a corpus to a server
//	tdraudit audit-dir -dir spool -json        # audit a spooled corpus
//	tdraudit audit-dir -dir spool -window 16   # windowed replay: audit each
//	                                           # trace's trailing 16 IPDs only
//
// Cross-machine audits (the paper's §5.2 cloud-verification setting:
// the corpus was recorded on a machine type the auditor does not own):
//
//	tdraudit calibrate -dir corpus -auditor slower-t-prime
//	tdraudit audit-dir -dir corpus -cross-machine -auditor slower-t-prime
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"sanity/internal/calib"
	"sanity/internal/fixtures"
	"sanity/internal/hw"
	"sanity/internal/ingest"
	"sanity/internal/pipeline"
	"sanity/internal/store"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "record":
			recordMain(os.Args[2:])
			return
		case "serve":
			serveMain(os.Args[2:])
			return
		case "send":
			sendMain(os.Args[2:])
			return
		case "audit-dir":
			auditDirMain(os.Args[2:])
			return
		case "calibrate":
			calibrateMain(os.Args[2:])
			return
		}
	}
	inMemoryMain(os.Args[1:])
}

// auditFlags are the pipeline knobs shared by every auditing mode.
type auditFlags struct {
	workers, batch, queue *int
	threshold             *float64
	stream, jsonOut       *bool
	compare               *bool
	window                *int
}

func addAuditFlags(fs *flag.FlagSet) *auditFlags {
	return &auditFlags{
		workers:   fs.Int("workers", 0, "audit workers (0 = GOMAXPROCS)"),
		batch:     fs.Int("batch", 8, "traces per scheduling chunk"),
		queue:     fs.Int("queue", 0, "bounded queue depth in chunks (0 = 2x workers)"),
		threshold: fs.Float64("threshold", 0.05, "TDR suspicion threshold (max relative IPD deviation)"),
		stream:    fs.Bool("stream", false, "print each verdict as it is emitted"),
		jsonOut:   fs.Bool("json", false, "emit verdicts and the summary as JSON lines"),
		compare:   fs.Bool("compare", false, "also run with 1 worker and report the speedup"),
		window: fs.Int("window", 0, "audit only each trace's trailing N inter-packet delays via windowed replay "+
			"(traces recorded with checkpoints resume mid-log; others fall back to full replay; 0 = whole trace)"),
	}
}

func (a *auditFlags) config() pipeline.Config {
	return pipeline.Config{
		Workers:      *a.workers,
		BatchSize:    *a.batch,
		QueueDepth:   *a.queue,
		TDRThreshold: *a.threshold,
		WindowIPDs:   *a.window,
	}
}

func inMemoryMain(args []string) {
	fs := flag.NewFlagSet("tdraudit", flag.ExitOnError)
	traces := fs.Int("traces", 120, "total test traces (half benign, half covert)")
	packets := fs.Int("packets", 60, "packets per trace")
	seed := fs.Uint64("seed", 42, "base noise seed")
	ckptEvery := fs.Int("checkpoint-every", fixtures.DefaultCheckpointEvery,
		"emit a replay checkpoint every N sent packets while recording (0 = none; enables -window)")
	af := addAuditFlags(fs)
	fs.Parse(args)

	fmt.Fprintf(os.Stderr, "recording %d traces of %d packets (plus training traces)...\n", *traces, *packets)
	var b *pipeline.Batch
	var err error
	if *ckptEvery > 0 {
		b, err = fixtures.CheckpointedAuditBatch(*traces, *packets, *ckptEvery, *seed)
	} else {
		b, err = fixtures.LabeledAuditBatch(*traces, *packets, *seed)
	}
	if err != nil {
		fatal(err)
	}
	runAudit(b, af)
}

func recordMain(args []string) {
	fs := flag.NewFlagSet("tdraudit record", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory to create (required)")
	traces := fs.Int("traces", 120, "total test traces per shard (half benign, half covert)")
	packets := fs.Int("packets", 60, "packets per trace")
	seed := fs.Uint64("seed", 42, "base noise seed")
	hetero := fs.Bool("hetero", false, "record two shards: the NFS server on T and the echo server on T'")
	ckptEvery := fs.Int("checkpoint-every", fixtures.DefaultCheckpointEvery,
		"emit a replay checkpoint every N sent packets (0 = none; checkpointed corpora support audit-dir -window)")
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("record: -dir is required"))
	}

	st, err := store.Create(*dir)
	if err != nil {
		fatal(err)
	}
	sizes := fixtures.AuditSizes(*traces, *packets)
	if *hetero {
		// The heterogeneous recipe predates checkpointing and stays
		// uncheckpointed; windowed audits over it fall back to full
		// replay per trace.
		fmt.Fprintf(os.Stderr, "recording two heterogeneous populations (%d+ traces each)...\n", *traces)
		nfsSet, echoSet, err := fixtures.HeterogeneousSets(sizes, *seed)
		if err != nil {
			fatal(err)
		}
		if err := fixtures.ExportHeterogeneous(st, nfsSet, echoSet, *seed+777); err != nil {
			fatal(err)
		}
	} else {
		fmt.Fprintf(os.Stderr, "recording %d traces of %d packets (checkpoint every %d packets)...\n",
			*traces, *packets, *ckptEvery)
		var set *fixtures.Set
		var err error
		if *ckptEvery > 0 {
			set, err = fixtures.PlayedSetCheckpointed(sizes, *ckptEvery, *seed)
		} else {
			set, err = fixtures.PlayedSet(sizes, *seed)
		}
		if err != nil {
			fatal(err)
		}
		if err := fixtures.ExportSet(st, set, fixtures.NFSShardMeta(*seed+777)); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("recorded %d traces across %d shards into %s\n",
		len(st.Entries()), len(st.Shards()), st.Dir())
}

func serveMain(args []string) {
	fs := flag.NewFlagSet("tdraudit serve", flag.ExitOnError)
	addr := fs.String("addr", ":7070", "listen address")
	dir := fs.String("dir", "", "spool directory for uploaded corpora (required)")
	secret := fs.String("secret", "", "shared secret clients must present with AUTH (empty = open server)")
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("serve: -dir is required"))
	}
	st, err := store.Create(*dir)
	if err != nil {
		fatal(err)
	}
	srv, err := ingest.ListenOpts(*addr, st, ingest.Options{Secret: *secret})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ingest server listening on %s, spooling to %s\n", srv.Addr(), st.Dir())
	select {} // serve until killed; the manifest is flushed per session
}

func sendMain(args []string) {
	fs := flag.NewFlagSet("tdraudit send", flag.ExitOnError)
	addr := fs.String("addr", "localhost:7070", "ingest server address")
	dir := fs.String("dir", "", "corpus directory to upload (required)")
	secret := fs.String("secret", "", "shared secret to present with AUTH (empty = none)")
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("send: -dir is required"))
	}
	st, err := store.Open(*dir)
	if err != nil {
		fatal(err)
	}
	res, err := ingest.PushAuth(*addr, st, *secret)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pushed %d shards, %d traces accepted, %d rejected\n",
		res.Shards, res.Accepted, len(res.Rejected))
	for _, r := range res.Rejected {
		fmt.Fprintf(os.Stderr, "rejected %s\n", r)
	}
	if len(res.Rejected) > 0 {
		os.Exit(1)
	}
}

func auditDirMain(args []string) {
	fs := flag.NewFlagSet("tdraudit audit-dir", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory to audit (required)")
	cross := fs.Bool("cross-machine", false, "audit shards recorded on other machine types through the corpus's calibration artifact")
	auditorName := fs.String("auditor", hw.Optiplex9020().Name, "the machine type the auditor owns (with -cross-machine)")
	af := addAuditFlags(fs)
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("audit-dir: -dir is required"))
	}
	st, err := store.Open(*dir)
	if err != nil {
		fatal(err)
	}
	resolve := fixtures.Resolver
	if *cross {
		auditor, err := hw.MachineByName(*auditorName)
		if err != nil {
			fatal(err)
		}
		models, err := calib.Load(st.Dir())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cross-machine mode: auditing as %s with %d calibration model(s)\n",
			auditor.Name, len(models.Models))
		resolve = fixtures.CalibratedResolver(auditor, models)
	}
	b, err := pipeline.BatchFromStore(st, resolve)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %d jobs across %d shards from %s\n",
		len(b.Jobs), len(b.Shards), st.Dir())
	runAudit(b, af)
}

// calibrateMain fits time-dilation models for every shard of a corpus
// recorded on a machine type other than the auditor's, and stores them
// as the corpus's calibration artifact (calib.json, next to
// manifest.json).
func calibrateMain(args []string) {
	fs := flag.NewFlagSet("tdraudit calibrate", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory to calibrate for (required)")
	auditorName := fs.String("auditor", hw.Optiplex9020().Name, "the machine type the auditor owns")
	train := fs.Int("train", 4, "known-good training traces per machine pair")
	packets := fs.Int("packets", 60, "packets per training trace")
	seed := fs.Uint64("seed", 42, "training-trace seed")
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("calibrate: -dir is required"))
	}
	st, err := store.Open(*dir)
	if err != nil {
		fatal(err)
	}
	auditor, err := hw.MachineByName(*auditorName)
	if err != nil {
		fatal(err)
	}
	models, err := calib.Load(st.Dir())
	if err != nil {
		fatal(err)
	}
	fitted := 0
	done := make(map[string]bool)
	for _, sm := range st.Shards() {
		if sm.Machine == auditor.Name {
			continue
		}
		// Models are scoped per (program, machine pair); many shards of
		// the same program and machine share one fit.
		if done[sm.Program+":"+sm.Machine] {
			continue
		}
		done[sm.Program+":"+sm.Machine] = true
		recorded, err := hw.MachineByName(sm.Machine)
		if err != nil {
			fatal(fmt.Errorf("calibrate: shard %q: %w", sm.Key, err))
		}
		fmt.Fprintf(os.Stderr, "calibrating %s: %s -> %s (%d training traces x %d packets)...\n",
			sm.Program, recorded.Name, auditor.Name, *train, *packets)
		mod, err := fixtures.CalibratePair(sm.Program, recorded, auditor, *train, *packets, *seed)
		if err != nil {
			fatal(err)
		}
		models.Add(mod)
		fitted++
		fmt.Printf("%s: scale %.4f [%.4f, %.4f], residual spread %.3f%% + %d ps (%d IPD pairs)\n",
			mod.Key(), mod.Scale, mod.ScaleLow, mod.ScaleHigh,
			mod.ResidualSpread*100, mod.AbsSpreadPs, mod.TrainingIPDs)
	}
	if fitted == 0 {
		fmt.Printf("every shard in %s is already recorded on %s; nothing to calibrate\n", st.Dir(), auditor.Name)
		return
	}
	if err := models.Save(st.Dir()); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d model(s) to %s\n", len(models.Models), st.Dir()+"/"+calib.FileName)
}

// runAudit drives one pipeline run (plus the optional 1-worker
// comparison) with the shared output formats.
func runAudit(b *pipeline.Batch, af *auditFlags) {
	cfg := af.config()
	p := pipeline.New(cfg)
	fmt.Fprintf(os.Stderr, "auditing %d traces on %s (GOMAXPROCS %d)...\n",
		len(b.Jobs), p, runtime.GOMAXPROCS(0))

	s, err := p.Go(b)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	for v := range s.Verdicts {
		switch {
		case *af.jsonOut && *af.stream:
			if err := enc.Encode(v); err != nil {
				fatal(err)
			}
		case *af.stream:
			printVerdict(v)
		}
	}
	r := s.Wait()
	if *af.jsonOut {
		if !*af.stream {
			for _, v := range r.Verdicts {
				if err := enc.Encode(v); err != nil {
					fatal(err)
				}
			}
		}
		if err := enc.Encode(struct {
			Metrics pipeline.Metrics `json:"metrics"`
		}{r.Metrics}); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(r.Format())
	}

	if *af.compare && p.Workers() > 1 {
		fmt.Fprintf(os.Stderr, "re-auditing with 1 worker for comparison...\n")
		cfg1 := cfg
		cfg1.Workers = 1
		r1, err := pipeline.New(cfg1).Run(b)
		if err != nil {
			fatal(err)
		}
		fmt.Fprint(os.Stderr, r1.Format())
		if r1.Metrics.ThroughputPerSec > 0 {
			fmt.Fprintf(os.Stderr, "speedup with %d workers: %.2fx\n",
				r.Metrics.Workers, r.Metrics.ThroughputPerSec/r1.Metrics.ThroughputPerSec)
		}
		if string(r.Canonical()) != string(r1.Canonical()) {
			fatal(fmt.Errorf("verdicts diverged between worker counts — determinism violation"))
		}
		fmt.Fprintln(os.Stderr, "verdicts identical across worker counts: true")
	}
}

func printVerdict(v pipeline.Verdict) {
	mark := " "
	if v.Suspicious {
		mark = "!"
	}
	tdr := "    -    "
	if v.TDRAudited {
		tdr = fmt.Sprintf("%8.4f%%", v.TDRScore*100)
	}
	fmt.Printf("%s %-12s %-7s tdr-dev %s", mark, v.JobID, v.Label, tdr)
	if v.Err != "" {
		fmt.Printf("  [%s]", v.Err)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tdraudit: %v\n", err)
	os.Exit(1)
}
