// Command tdraudit runs the concurrent multi-trace audit pipeline.
// Every auditing mode drives the same sanity.Auditor session API:
// declarative options build a reusable auditor, Plan resolves shards,
// calibration, and per-trace windows, and Run streams verdicts under
// a cancellable context (Ctrl-C ends a run cleanly with the partial,
// in-order verdict stream).
//
//	tdraudit                            # in-memory corpus, all CPUs
//	tdraudit -traces 240 -workers 4     # fixed pool
//	tdraudit -stream -json              # machine-readable verdict stream
//	tdraudit -compare                   # also run 1 worker, report speedup
//
//	tdraudit record -dir corpus         # record a labeled corpus to disk
//	tdraudit record -dir corpus -checkpoint-every auto   # autotuned interval
//	tdraudit record -dir corpus -hetero # two shards: nfsd/T and echod/T'
//	tdraudit serve -addr :7070 -dir spool      # audit-side ingest server
//	tdraudit send -addr host:7070 -dir corpus  # ship a corpus to a server
//	tdraudit audit-dir -dir spool -json        # audit a spooled corpus
//	tdraudit audit-dir -dir spool -window 16   # windowed replay: audit each
//	                                           # trace's trailing 16 IPDs only
//	tdraudit audit-dir -dir spool -window auto # CCE prefilter picks each
//	                                           # trace's audited range
//	tdraudit audit-dir -dir spool -trace out.json  # span tree for chrome://tracing
//	tdraudit audit-dir -dir spool -json -explain   # verdicts with evidence trails
//	tdraudit triage -dir spool                 # suspicion census, claim order
//	tdraudit triage -dir spool -backfill       # score pre-triage corpora in place
//
// Cross-machine audits (the paper's §5.2 cloud-verification setting:
// the corpus was recorded on a machine type the auditor does not own):
//
//	tdraudit calibrate -dir corpus -auditor slower-t-prime
//	tdraudit audit-dir -dir corpus -cross-machine -auditor slower-t-prime
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"sanity/internal/audit"
	"sanity/internal/benchreg"
	"sanity/internal/calib"
	"sanity/internal/fixtures"
	"sanity/internal/hw"
	"sanity/internal/ingest"
	"sanity/internal/obs"
	"sanity/internal/pipeline"
	"sanity/internal/store"
	"sanity/internal/triage"
)

// logger carries every diagnostic and progress line; stdout stays
// reserved for verdicts, summaries, and reports. addLogFlags replaces
// it per subcommand once -log-format/-log-level are parsed.
var logger = slog.New(obs.NewLogHandler(os.Stderr, obs.LogOptions{}))

// addLogFlags registers the shared -log-format/-log-level flags;
// call the returned func after fs.Parse to install the logger.
func addLogFlags(fs *flag.FlagSet) func() {
	format := fs.String("log-format", "text", "log output format: 'text' or 'json'")
	level := fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	return func() {
		lvl, err := obs.ParseLogLevel(*level)
		if err != nil {
			fatal(err)
		}
		logger = slog.New(obs.NewLogHandler(os.Stderr, obs.LogOptions{Format: *format, Level: lvl}))
	}
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "record":
			recordMain(os.Args[2:])
			return
		case "serve":
			serveMain(os.Args[2:])
			return
		case "send":
			sendMain(os.Args[2:])
			return
		case "audit-dir":
			auditDirMain(os.Args[2:])
			return
		case "calibrate":
			calibrateMain(os.Args[2:])
			return
		case "triage":
			triageMain(os.Args[2:])
			return
		case "obs":
			obsMain(os.Args[2:])
			return
		}
	}
	inMemoryMain(os.Args[1:])
}

// interruptible returns a context canceled by the first Ctrl-C, so a
// long audit ends with its partial, in-order verdict stream instead
// of dying mid-write. The signal registration is dropped as soon as
// the context dies, so a second Ctrl-C (say, during the drain of an
// in-flight replay) kills the process as usual.
func interruptible() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}

// auditFlags are the auditor knobs shared by every auditing mode.
type auditFlags struct {
	workers, batch, queue *int
	segWorkers            *int
	threshold             *float64
	stream, jsonOut       *bool
	compare               *bool
	window                *string
	trace                 *string
	explain               *bool
}

func addAuditFlags(fs *flag.FlagSet) *auditFlags {
	return &auditFlags{
		workers: fs.Int("workers", 0, "audit workers (0 = GOMAXPROCS)"),
		segWorkers: fs.Int("segment-workers", 0, "goroutines per trace for checkpoint-parallel replay "+
			"(0 or 1 = sequential; verdicts are identical either way, only latency changes)"),
		batch:     fs.Int("batch", 8, "traces per scheduling chunk"),
		queue:     fs.Int("queue", 0, "bounded queue depth in chunks (0 = 2x workers)"),
		threshold: fs.Float64("threshold", 0.05, "TDR suspicion threshold (max relative IPD deviation)"),
		stream:    fs.Bool("stream", false, "print each verdict as it is emitted"),
		jsonOut:   fs.Bool("json", false, "emit verdicts and the summary as JSON lines"),
		compare:   fs.Bool("compare", false, "also run with 1 worker and report the speedup"),
		window: fs.String("window", "full", "replay-window policy: 'full' audits whole traces; an integer N audits "+
			"each trace's trailing N inter-packet delays; 'auto' (or 'auto:N') lets the CCE prefilter pick each "+
			"trace's audited N-IPD range, falling back to full coverage where nothing stands out "+
			"(traces recorded with checkpoints resume mid-log; others fall back to full replay)"),
		trace: fs.String("trace", "", "write the audit's span tree as Chrome trace_event JSON to this file "+
			"(open in chrome://tracing or Perfetto; '' disables tracing)"),
		explain: fs.Bool("explain", false, "attach an evidence trail to each verdict: selected window and why, "+
			"per-window CCE z-scores, TDR deviation summary (visible with -json)"),
	}
}

// parseWindow maps the -window flag onto a window policy.
func parseWindow(s string) (audit.Window, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "" || s == "full" || s == "0":
		return audit.WindowFull(), nil
	case s == "auto":
		return audit.WindowAuto(0), nil
	case strings.HasPrefix(s, "auto:"):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "auto:"))
		if err != nil || n <= 0 {
			return audit.Window{}, fmt.Errorf("bad -window %q: auto:N needs a positive IPD count", s)
		}
		return audit.WindowAuto(n), nil
	default:
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return audit.Window{}, fmt.Errorf("bad -window %q: want 'full', an IPD count, or 'auto[:N]'", s)
		}
		if n == 0 {
			return audit.WindowFull(), nil
		}
		return audit.WindowTrailing(n), nil
	}
}

// options renders the shared flags as auditor options.
func (a *auditFlags) options() ([]audit.Option, error) {
	w, err := parseWindow(*a.window)
	if err != nil {
		return nil, err
	}
	opts := []audit.Option{
		audit.WithRegistry(fixtures.KnownGood),
		audit.WithWorkers(*a.workers),
		audit.WithSegmentWorkers(*a.segWorkers),
		audit.WithBatchSize(*a.batch),
		audit.WithQueueDepth(*a.queue),
		audit.WithThresholds(*a.threshold, 0),
		audit.WithWindow(w),
	}
	if *a.explain {
		opts = append(opts, audit.WithExplain())
	}
	return opts, nil
}

// parseCheckpointEvery maps the -checkpoint-every flag: an interval,
// 0 for none, or "auto" to pick one from trace-length statistics —
// the existing corpus's manifest when appending (st non-nil), the
// planned packet count for a fresh recording.
func parseCheckpointEvery(s string, st *store.Store, packets int) (int, error) {
	s = strings.TrimSpace(s)
	if s == "auto" {
		var lengths []int
		if st != nil {
			lengths = st.TraceLengths()
		}
		if len(lengths) == 0 {
			lengths = []int{packets}
		}
		every := store.AutoCheckpointInterval(lengths)
		logger.Info("checkpoint-every autotuned", "every", every, "traceLengths", len(lengths))
		return every, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad -checkpoint-every %q: want an interval, 0, or 'auto'", s)
	}
	return n, nil
}

func inMemoryMain(args []string) {
	fs := flag.NewFlagSet("tdraudit", flag.ExitOnError)
	traces := fs.Int("traces", 120, "total test traces (half benign, half covert)")
	packets := fs.Int("packets", 60, "packets per trace")
	seed := fs.Uint64("seed", 42, "base noise seed")
	ckptEvery := fs.String("checkpoint-every", strconv.Itoa(fixtures.DefaultCheckpointEvery),
		"emit a replay checkpoint every N sent packets while recording (0 = none, auto = from trace-length stats; enables -window)")
	af := addAuditFlags(fs)
	applyLog := addLogFlags(fs)
	fs.Parse(args)
	applyLog()

	every, err := parseCheckpointEvery(*ckptEvery, nil, *packets)
	if err != nil {
		fatal(err)
	}
	logger.Info("recording in-memory corpus", "traces", *traces, "packets", *packets)
	var b *pipeline.Batch
	if every > 0 {
		b, err = fixtures.CheckpointedAuditBatch(*traces, *packets, every, *seed)
	} else {
		b, err = fixtures.LabeledAuditBatch(*traces, *packets, *seed)
	}
	if err != nil {
		fatal(err)
	}
	runAudit(audit.FromBatch(b), af)
}

func recordMain(args []string) {
	fs := flag.NewFlagSet("tdraudit record", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory to create (required)")
	traces := fs.Int("traces", 120, "total test traces per shard (half benign, half covert)")
	packets := fs.Int("packets", 60, "packets per trace")
	seed := fs.Uint64("seed", 42, "base noise seed")
	hetero := fs.Bool("hetero", false, "record two shards: the NFS server on T and the echo server on T'")
	ckptEvery := fs.String("checkpoint-every", strconv.Itoa(fixtures.DefaultCheckpointEvery),
		"emit a replay checkpoint every N sent packets (0 = none, auto = from the corpus's trace-length stats; "+
			"checkpointed corpora support audit-dir -window)")
	applyLog := addLogFlags(fs)
	fs.Parse(args)
	applyLog()
	if *dir == "" {
		fatal(fmt.Errorf("record: -dir is required"))
	}

	st, err := store.Create(*dir)
	if err != nil {
		fatal(err)
	}
	sizes := fixtures.AuditSizes(*traces, *packets)
	if *hetero {
		// The heterogeneous recipe predates checkpointing and stays
		// uncheckpointed; windowed audits over it fall back to full
		// replay per trace.
		logger.Info("recording heterogeneous populations", "tracesPerShard", *traces)
		nfsSet, echoSet, err := fixtures.HeterogeneousSets(sizes, *seed)
		if err != nil {
			fatal(err)
		}
		if err := fixtures.ExportHeterogeneous(st, nfsSet, echoSet, *seed+777); err != nil {
			fatal(err)
		}
	} else {
		every, err := parseCheckpointEvery(*ckptEvery, st, *packets)
		if err != nil {
			fatal(err)
		}
		logger.Info("recording corpus", "traces", *traces, "packets", *packets, "checkpointEvery", every)
		var set *fixtures.Set
		if every > 0 {
			set, err = fixtures.PlayedSetCheckpointed(sizes, every, *seed)
		} else {
			set, err = fixtures.PlayedSet(sizes, *seed)
		}
		if err != nil {
			fatal(err)
		}
		if err := fixtures.ExportSet(st, set, fixtures.NFSShardMeta(*seed+777)); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("recorded %d traces across %d shards into %s\n",
		len(st.Entries()), len(st.Shards()), st.Dir())
}

func serveMain(args []string) {
	fs := flag.NewFlagSet("tdraudit serve", flag.ExitOnError)
	addr := fs.String("addr", ":7070", "listen address")
	dir := fs.String("dir", "", "spool directory for uploaded corpora (required)")
	secret := fs.String("secret", "", "shared secret clients must present with AUTH (empty = open server)")
	maxTraces := fs.Int("max-traces-per-conn", 0, "per-connection trace quota (0 = unlimited)")
	maxBytes := fs.Int64("max-bytes-per-conn", 0, "per-connection payload-byte quota (0 = unlimited)")
	applyLog := addLogFlags(fs)
	fs.Parse(args)
	applyLog()
	if *dir == "" {
		fatal(fmt.Errorf("serve: -dir is required"))
	}
	st, err := store.Create(*dir)
	if err != nil {
		fatal(err)
	}
	srv, err := ingest.ListenOpts(*addr, st, ingest.Options{
		Secret:           *secret,
		MaxTracesPerConn: *maxTraces,
		MaxBytesPerConn:  *maxBytes,
		Log:              logger.With("component", "ingest"),
	})
	if err != nil {
		fatal(err)
	}
	logger.Info("ingest server listening", "addr", srv.Addr().String(), "spool", st.Dir())
	select {} // serve until killed; the manifest is flushed per session
}

func sendMain(args []string) {
	fs := flag.NewFlagSet("tdraudit send", flag.ExitOnError)
	addr := fs.String("addr", "localhost:7070", "ingest server address")
	dir := fs.String("dir", "", "corpus directory to upload (required)")
	secret := fs.String("secret", "", "shared secret to present with AUTH (empty = none)")
	applyLog := addLogFlags(fs)
	fs.Parse(args)
	applyLog()
	if *dir == "" {
		fatal(fmt.Errorf("send: -dir is required"))
	}
	st, err := store.Open(*dir)
	if err != nil {
		fatal(err)
	}
	res, err := ingest.PushAuth(*addr, st, *secret)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pushed %d shards, %d traces accepted, %d rejected\n",
		res.Shards, res.Accepted, len(res.Rejected))
	for _, r := range res.Rejected {
		logger.Warn("trace rejected by server", "reason", r)
	}
	if len(res.Rejected) > 0 {
		os.Exit(1)
	}
}

func auditDirMain(args []string) {
	fs := flag.NewFlagSet("tdraudit audit-dir", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory to audit (required)")
	cross := fs.Bool("cross-machine", false, "audit shards recorded on other machine types through the corpus's calibration artifact")
	auditorName := fs.String("auditor", hw.Optiplex9020().Name, "the machine type the auditor owns (with -cross-machine)")
	af := addAuditFlags(fs)
	applyLog := addLogFlags(fs)
	fs.Parse(args)
	applyLog()
	if *dir == "" {
		fatal(fmt.Errorf("audit-dir: -dir is required"))
	}
	opts, err := af.crossOptions(*cross, *auditorName, *dir)
	if err != nil {
		fatal(err)
	}
	runAuditOpts(audit.Dir(*dir), af, opts)
}

// crossOptions renders the shared flags plus the cross-machine mode:
// the auditor's machine substituted per shard, calibrated through the
// corpus's calib.json artifact.
func (a *auditFlags) crossOptions(cross bool, auditorName, dir string) ([]audit.Option, error) {
	opts, err := a.options()
	if err != nil {
		return nil, err
	}
	if !cross {
		return opts, nil
	}
	auditor, err := hw.MachineByName(auditorName)
	if err != nil {
		return nil, err
	}
	models, err := calib.Load(dir)
	if err != nil {
		return nil, err
	}
	logger.Info("cross-machine mode", "auditor", auditor.Name, "models", len(models.Models))
	return append(opts, audit.WithAuditorMachine(auditor), audit.WithCalibration(models)), nil
}

// calibrateMain fits time-dilation models for every shard of a corpus
// recorded on a machine type other than the auditor's, and stores them
// as the corpus's calibration artifact (calib.json, next to
// manifest.json).
func calibrateMain(args []string) {
	fs := flag.NewFlagSet("tdraudit calibrate", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory to calibrate for (required)")
	auditorName := fs.String("auditor", hw.Optiplex9020().Name, "the machine type the auditor owns")
	train := fs.Int("train", 4, "known-good training traces per machine pair")
	packets := fs.Int("packets", 60, "packets per training trace")
	seed := fs.Uint64("seed", 42, "training-trace seed")
	applyLog := addLogFlags(fs)
	fs.Parse(args)
	applyLog()
	if *dir == "" {
		fatal(fmt.Errorf("calibrate: -dir is required"))
	}
	st, err := store.Open(*dir)
	if err != nil {
		fatal(err)
	}
	auditor, err := hw.MachineByName(*auditorName)
	if err != nil {
		fatal(err)
	}
	models, err := calib.Load(st.Dir())
	if err != nil {
		fatal(err)
	}
	fitted := 0
	done := make(map[string]bool)
	for _, sm := range st.Shards() {
		if sm.Machine == auditor.Name {
			continue
		}
		// Models are scoped per (program, machine pair); many shards of
		// the same program and machine share one fit.
		if done[sm.Program+":"+sm.Machine] {
			continue
		}
		done[sm.Program+":"+sm.Machine] = true
		recorded, err := hw.MachineByName(sm.Machine)
		if err != nil {
			fatal(fmt.Errorf("calibrate: shard %q: %w", sm.Key, err))
		}
		logger.Info("calibrating machine pair", "program", sm.Program,
			"recorded", recorded.Name, "auditor", auditor.Name, "train", *train, "packets", *packets)
		mod, err := fixtures.CalibratePair(sm.Program, recorded, auditor, *train, *packets, *seed)
		if err != nil {
			fatal(err)
		}
		models.Add(mod)
		fitted++
		fmt.Printf("%s: scale %.4f [%.4f, %.4f], residual spread %.3f%% + %d ps (%d IPD pairs)\n",
			mod.Key(), mod.Scale, mod.ScaleLow, mod.ScaleHigh,
			mod.ResidualSpread*100, mod.AbsSpreadPs, mod.TrainingIPDs)
	}
	if fitted == 0 {
		fmt.Printf("every shard in %s is already recorded on %s; nothing to calibrate\n", st.Dir(), auditor.Name)
		return
	}
	if err := models.Save(st.Dir()); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d model(s) to %s\n", len(models.Models), st.Dir()+"/"+calib.FileName)
}

// runAudit plans and runs one audit over src with the shared flags.
func runAudit(src audit.Source, af *auditFlags) {
	opts, err := af.options()
	if err != nil {
		fatal(err)
	}
	runAuditOpts(src, af, opts)
}

// runAuditOpts drives one Auditor session (plus the optional 1-worker
// comparison) with the shared output formats. Interrupting a run
// keeps the verdicts already streamed and reports the cancellation.
func runAuditOpts(src audit.Source, af *auditFlags, opts []audit.Option) {
	ctx, cancel := interruptible()
	defer cancel()

	// -trace: collect the funnel's span tree and write it as Chrome
	// trace_event JSON once the audit (and any -compare rerun) ends.
	var tracer *obs.Tracer
	if *af.trace != "" {
		tracer = obs.NewTracer()
		o := obs.NewObserver(tracer, nil)
		ctx = o.Context(ctx)
		defer func() {
			if err := writeTraceFile(*af.trace, tracer); err != nil {
				logger.Error("writing trace failed", "path", *af.trace, "err", err)
			}
		}()
	}

	auditor, err := audit.New(opts...)
	if err != nil {
		fatal(err)
	}
	plan, err := auditor.Plan(ctx, src)
	if err != nil {
		fatal(err)
	}
	info := plan.Info()
	logger.Info("auditing", "traces", info.Jobs, "shards", info.Shards,
		"window", info.Window.Mode.String(), "workers", auditor.Workers(), "gomaxprocs", runtime.GOMAXPROCS(0))
	if info.Window.Mode == audit.ModeAuto && info.TotalIPDs > 0 {
		logger.Info("auto windows selected", "narrowed", info.Narrowed, "traces", info.Jobs,
			"replayedIPDPct", 100*float64(info.AuditIPDs)/float64(info.TotalIPDs))
	}

	enc := json.NewEncoder(os.Stdout)
	var verdicts []pipeline.Verdict
	var runErr error
	start := time.Now()
	for v, err := range plan.Run(ctx) {
		if err != nil {
			runErr = err
			break
		}
		verdicts = append(verdicts, v)
		switch {
		case *af.jsonOut && *af.stream:
			if err := enc.Encode(v); err != nil {
				fatal(err)
			}
		case *af.stream:
			printVerdict(v)
		}
	}
	r := pipeline.Collect(verdicts, auditor.Workers(), *af.batch, time.Since(start).Nanoseconds())
	if runErr != nil {
		logger.Error("audit ended early", "err", runErr)
	}
	if *af.jsonOut {
		if !*af.stream {
			for _, v := range r.Verdicts {
				if err := enc.Encode(v); err != nil {
					fatal(err)
				}
			}
		}
		if err := enc.Encode(struct {
			Metrics pipeline.Metrics `json:"metrics"`
		}{r.Metrics}); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(r.Format())
	}
	if runErr != nil {
		// os.Exit skips deferred writers; flush the trace first.
		if err := writeTraceFile(*af.trace, tracer); err != nil {
			logger.Error("writing trace failed", "path", *af.trace, "err", err)
		}
		os.Exit(1)
	}

	if *af.compare && auditor.Workers() > 1 {
		logger.Info("re-auditing with 1 worker for comparison")
		one, err := audit.New(append(append([]audit.Option(nil), opts...), audit.WithWorkers(1))...)
		if err != nil {
			fatal(err)
		}
		plan1, err := one.Plan(ctx, src)
		if err != nil {
			fatal(err)
		}
		r1, err := plan1.RunAll(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Fprint(os.Stderr, r1.Format())
		if r1.Metrics.ThroughputPerSec > 0 {
			logger.Info("parallel speedup measured", "workers", auditor.Workers(),
				"speedup", r.Metrics.ThroughputPerSec/r1.Metrics.ThroughputPerSec)
		}
		if string(r.Canonical()) != string(r1.Canonical()) {
			fatal(fmt.Errorf("verdicts diverged between worker counts — determinism violation"))
		}
		logger.Info("verdicts identical across worker counts")
	}
}

// writeTraceFile drains the tracer into path as Chrome trace_event
// JSON. A nil tracer or an already-drained (empty) tracer is a no-op,
// so the explicit pre-exit flush and the deferred flush compose.
func writeTraceFile(path string, tracer *obs.Tracer) error {
	if tracer == nil || path == "" {
		return nil
	}
	spans := tracer.Drain()
	if len(spans) == 0 {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	logger.Info("wrote trace", "spans", len(spans), "path", path)
	return nil
}

// triageMain is the offline triage census: it reads a corpus, lists
// every test trace's suspicion score in descending order (the order a
// triage-enabled daemon would claim them in), and — with -backfill —
// first scores any trace recorded before triage existed, persisting
// the scores to the manifest and sidecars.
//
//	tdraudit triage -dir corpus
//	tdraudit triage -dir corpus -backfill
//	tdraudit triage -dir corpus -json
func triageMain(args []string) {
	fs := flag.NewFlagSet("tdraudit triage", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory to census (required)")
	backfill := fs.Bool("backfill", false, "score unscored test traces through the detector ensemble and persist the scores")
	jsonOut := fs.Bool("json", false, "emit the census as JSON lines")
	applyLog := addLogFlags(fs)
	fs.Parse(args)
	applyLog()
	if *dir == "" {
		fatal(fmt.Errorf("triage: -dir is required"))
	}
	st, err := store.Open(*dir)
	if err != nil {
		fatal(err)
	}
	if *backfill {
		n, err := st.ScorePending(triage.Options{})
		if err != nil {
			fatal(err)
		}
		if err := st.Flush(); err != nil {
			fatal(err)
		}
		logger.Info("backfilled triage scores", "scored", n)
	}

	type row struct {
		ID        string             `json:"id"`
		Shard     string             `json:"shard"`
		Audit     string             `json:"audit"`
		Scored    bool               `json:"scored"`
		Suspicion float64            `json:"suspicion"`
		Band      string             `json:"band"`
		Detectors map[string]float64 `json:"detectors,omitempty"`
	}
	var rows []row
	unscored := 0
	for _, e := range st.Entries() {
		if e.Role != store.RoleTest {
			continue
		}
		r := row{
			ID:        e.ID,
			Shard:     e.Shard,
			Audit:     e.Audit,
			Scored:    e.Triage != nil,
			Suspicion: e.Suspicion(),
			Band:      triage.Band(e.Suspicion()),
		}
		if r.Audit == store.AuditPending {
			r.Audit = "pending"
		}
		if e.Triage != nil {
			r.Detectors = e.Triage.PerDetector
		} else {
			unscored++
		}
		rows = append(rows, r)
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Suspicion > rows[j].Suspicion })

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, r := range rows {
			if err := enc.Encode(r); err != nil {
				fatal(err)
			}
		}
		return
	}
	for _, r := range rows {
		scored := " "
		if !r.Scored {
			scored = "?"
		}
		fmt.Printf("%s %-16s %-7s %.4f  %-8s %s\n", scored, r.ID, r.Band, r.Suspicion, r.Audit, r.Shard)
	}
	fmt.Printf("%d test traces, %d unscored", len(rows), unscored)
	if unscored > 0 && !*backfill {
		fmt.Print(" (run with -backfill to score them)")
	}
	fmt.Println()
}

func printVerdict(v pipeline.Verdict) {
	mark := " "
	if v.Suspicious {
		mark = "!"
	}
	tdr := "    -    "
	if v.TDRAudited {
		tdr = fmt.Sprintf("%8.4f%%", v.TDRScore*100)
	}
	fmt.Printf("%s %-12s %-7s tdr-dev %s", mark, v.JobID, v.Label, tdr)
	if v.Err != "" {
		fmt.Printf("  [%s]", v.Err)
	}
	fmt.Println()
}

func fatal(err error) {
	logger.Error("tdraudit failed", "err", err)
	os.Exit(1)
}

// obsMain dispatches the offline observability tools.
func obsMain(args []string) {
	if len(args) > 0 && args[0] == "report" {
		obsReportMain(args[1:])
		return
	}
	fatal(fmt.Errorf("obs: unknown subcommand %q (want 'report')", strings.Join(args, " ")))
}

// obsReportMain is the offline funnel analyzer: it reads persisted
// span records (one spans.ndjson, or a trace dir with its rotated
// generations) and renders the audit funnel per stage — counts,
// p50/p99 wall, alloc, critical-path share — optionally diffed
// against a BENCH_*.json baseline's per-stage decomposition.
//
//	tdraudit obs report -spans spool-traces/
//	tdraudit obs report -spans spool-traces/spans.ndjson -json
//	tdraudit obs report -spans spool-traces/ -baseline BENCH_2026-08-08.json
func obsReportMain(args []string) {
	fs := flag.NewFlagSet("tdraudit obs report", flag.ExitOnError)
	spans := fs.String("spans", "", "spans.ndjson file, or a trace dir holding it plus rotated generations (required)")
	baseline := fs.String("baseline", "", "BENCH_*.json report to diff the per-stage means against ('' = no diff)")
	bench := fs.String("bench", benchreg.BenchAuditWindowed, "which benchmark's stage decomposition to diff against (with -baseline)")
	jsonOut := fs.Bool("json", false, "emit the funnel report as JSON instead of a table")
	applyLog := addLogFlags(fs)
	fs.Parse(args)
	applyLog()
	if *spans == "" {
		fatal(fmt.Errorf("obs report: -spans is required"))
	}

	recs, err := obs.ReadSpanFiles(*spans)
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fatal(fmt.Errorf("obs report: no span records under %s", *spans))
	}
	rep := obs.BuildFunnelReport(recs)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(rep.Format())
	}
	if *baseline == "" {
		return
	}

	base, err := benchreg.Load(*baseline)
	if err != nil {
		fatal(err)
	}
	if len(base.Stages) == 0 {
		logger.Warn("baseline has no per-stage decomposition (schema 1); regenerate it with tdrbench bench -out",
			"baseline", *baseline)
		return
	}
	stages, ok := base.Stages[*bench]
	if !ok {
		fatal(fmt.Errorf("obs report: baseline %s has no stage decomposition for benchmark %q", *baseline, *bench))
	}
	fmt.Printf("\nper-stage delta vs %s (%s, %s):\n", *baseline, *bench, base.Date)
	fmt.Print(obs.FormatStageDeltas(obs.DiffStageSummaries(stages, rep.Summaries(), benchreg.Tolerance)))
}
