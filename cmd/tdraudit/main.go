// Command tdraudit runs the concurrent multi-trace audit pipeline
// over a labeled batch of recorded NFS sessions: half benign, half
// compromised by the four covert timing channels. Every trace goes
// through the full Sanity path — statistical detectors plus
// time-deterministic replay of the trace's log on the known-good
// binary — and per-trace verdicts stream out as they are merged back
// into submission order.
//
//	tdraudit                          # 120 traces, all CPUs
//	tdraudit -traces 240 -workers 4   # fixed pool
//	tdraudit -stream                  # print each verdict as it lands
//	tdraudit -compare                 # also run 1 worker, report speedup
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"sanity/internal/fixtures"
	"sanity/internal/pipeline"
)

func main() {
	var (
		traces    = flag.Int("traces", 120, "total test traces (half benign, half covert)")
		packets   = flag.Int("packets", 60, "packets per trace")
		workers   = flag.Int("workers", 0, "audit workers (0 = GOMAXPROCS)")
		batch     = flag.Int("batch", 8, "traces per scheduling chunk")
		queue     = flag.Int("queue", 0, "bounded queue depth in chunks (0 = 2x workers)")
		threshold = flag.Float64("threshold", 0.05, "TDR suspicion threshold (max relative IPD deviation)")
		seed      = flag.Uint64("seed", 42, "base noise seed")
		stream    = flag.Bool("stream", false, "print each verdict as it is emitted")
		compare   = flag.Bool("compare", false, "also run with 1 worker and report the speedup")
	)
	flag.Parse()

	fmt.Fprintf(os.Stderr, "recording %d traces of %d packets (plus training traces)...\n", *traces, *packets)
	b, err := fixtures.LabeledAuditBatch(*traces, *packets, *seed)
	if err != nil {
		fatal(err)
	}

	cfg := pipeline.Config{
		Workers:      *workers,
		BatchSize:    *batch,
		QueueDepth:   *queue,
		TDRThreshold: *threshold,
	}
	p := pipeline.New(cfg)
	fmt.Fprintf(os.Stderr, "auditing %d traces on %s (GOMAXPROCS %d)...\n",
		len(b.Jobs), p, runtime.GOMAXPROCS(0))

	s, err := p.Go(b)
	if err != nil {
		fatal(err)
	}
	for v := range s.Verdicts {
		if !*stream {
			continue
		}
		mark := " "
		if v.Suspicious {
			mark = "!"
		}
		tdr := "    -    "
		if v.TDRAudited {
			tdr = fmt.Sprintf("%8.4f%%", v.TDRScore*100)
		}
		fmt.Printf("%s %-12s %-7s tdr-dev %s", mark, v.JobID, v.Label, tdr)
		if v.Err != "" {
			fmt.Printf("  [%s]", v.Err)
		}
		fmt.Println()
	}
	r := s.Wait()
	fmt.Print(r.Format())

	if *compare && p.Workers() > 1 {
		fmt.Fprintf(os.Stderr, "re-auditing with 1 worker for comparison...\n")
		cfg1 := cfg
		cfg1.Workers = 1
		r1, err := pipeline.New(cfg1).Run(b)
		if err != nil {
			fatal(err)
		}
		fmt.Print(r1.Format())
		if r1.Metrics.ThroughputPerSec > 0 {
			fmt.Printf("speedup with %d workers: %.2fx\n",
				r.Metrics.Workers, r.Metrics.ThroughputPerSec/r1.Metrics.ThroughputPerSec)
		}
		if string(r.Canonical()) != string(r1.Canonical()) {
			fatal(fmt.Errorf("verdicts diverged between worker counts — determinism violation"))
		}
		fmt.Println("verdicts identical across worker counts: true")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tdraudit: %v\n", err)
	os.Exit(1)
}
