// Command sanity assembles and runs SVM programs under the TDR
// engine: record an execution (play), reproduce it with time
// determinism (replay-tdr), or reproduce only its functional behavior
// (replay-functional, the conventional-replay baseline).
//
//	sanity -program prog.sasm -logout run.log
//	sanity -program prog.sasm -mode replay-tdr -login run.log
//	sanity -program prog.sasm -disasm
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"sanity/internal/asm"
	"sanity/internal/core"
	"sanity/internal/hw"
	"sanity/internal/obs"
	"sanity/internal/replaylog"
)

func main() {
	var (
		programPath = flag.String("program", "", "path to an SVM assembly file (.sasm)")
		mode        = flag.String("mode", "play", "play | replay-tdr | replay-functional")
		logIn       = flag.String("login", "", "replay: path of the recorded log")
		logOut      = flag.String("logout", "", "play: write the event log here")
		seed        = flag.Uint64("seed", 1, "hardware noise seed")
		profileName = flag.String("profile", "sanity", "noise profile: sanity|dirty|clean|kernel-quiet")
		machineName = flag.String("machine", "optiplex9020", "machine type: optiplex9020|slower-t-prime")
		disasm      = flag.Bool("disasm", false, "print the disassembly and exit")
		showEvents  = flag.Bool("events", false, "print the timed event trace")
	)
	flag.Parse()
	if *programPath == "" {
		logger.Error("-program is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*programPath)
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(*programPath, string(src))
	if err != nil {
		fatal(err)
	}
	if *disasm {
		fmt.Print(asm.Disassemble(prog))
		return
	}

	cfg := core.Config{Seed: *seed, MaxSteps: 4_000_000_000}
	switch *machineName {
	case "optiplex9020":
		cfg.Machine = hw.Optiplex9020()
	case "slower-t-prime":
		cfg.Machine = hw.SlowerT()
	default:
		fatal(fmt.Errorf("unknown machine %q", *machineName))
	}
	switch *profileName {
	case "sanity":
		cfg.Profile = hw.ProfileSanity()
	case "dirty":
		cfg.Profile = hw.ProfileDirty()
	case "clean":
		cfg.Profile = hw.ProfileClean()
	case "kernel-quiet":
		cfg.Profile = hw.ProfileKernelQuiet()
	default:
		fatal(fmt.Errorf("unknown profile %q", *profileName))
	}

	var exec *core.Execution
	switch *mode {
	case "play":
		var log *replaylog.Log
		exec, log, err = core.Play(prog, nil, cfg)
		if err != nil {
			fatal(err)
		}
		if *logOut != "" {
			f, err := os.Create(*logOut)
			if err != nil {
				fatal(err)
			}
			if err := log.Encode(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			st := log.Stats()
			fmt.Printf("log: %d bytes (%d packets, %d value records) -> %s\n",
				st.TotalBytes, st.Packets, st.ValueRecords, *logOut)
		}
	case "replay-tdr", "replay-functional":
		if *logIn == "" {
			fatal(fmt.Errorf("%s needs -login", *mode))
		}
		f, err := os.Open(*logIn)
		if err != nil {
			fatal(err)
		}
		log, err := replaylog.Decode(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if *mode == "replay-tdr" {
			exec, err = core.ReplayTDR(prog, log, cfg)
		} else {
			exec, err = core.ReplayFunctional(prog, log, cfg)
		}
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	if len(exec.Stdout) > 0 {
		fmt.Printf("stdout: %s\n", exec.Stdout)
	}
	fmt.Printf("mode=%s machine=%s profile=%s seed=%d\n", *mode, cfg.Machine.Name, cfg.Profile.Name, *seed)
	fmt.Printf("instructions=%d virtual-time=%.3f ms exit=%d outputs=%d\n",
		exec.Instructions, float64(exec.TotalPs)/1e9, exec.ExitCode, len(exec.Outputs))
	r := exec.HWReport
	fmt.Printf("hw: l1d-miss=%d l2-miss=%d l3-miss=%d tlb-miss=%d interrupts=%d preemptions=%d\n",
		r.L1DMisses, r.L2Misses, r.L3Misses, r.TLBMisses, r.Interrupts, r.Preemptions)
	if *showEvents {
		for i, e := range exec.Events {
			fmt.Printf("event %4d  %-12s instr=%-12d t=%.6f ms\n", i, e.Kind, e.Instr, float64(e.TimePs)/1e9)
		}
	}
}

var logger = slog.New(obs.NewLogHandler(os.Stderr, obs.LogOptions{}))

func fatal(err error) {
	logger.Error("sanity failed", "err", err)
	os.Exit(1)
}
