package main

import (
	"flag"
	"fmt"
	"os"

	"sanity/internal/benchreg"
)

// benchMain runs the benchmark-regression harness: measure the audit
// hot path, write the BENCH_<date>.json report, and optionally gate
// against a checked-in baseline. Exit status 1 on any gate violation,
// so CI fails on a >25% regression (or on losing the windowed
// replay's required 2x speedup).
func benchMain(args []string) {
	fs := flag.NewFlagSet("tdrbench bench", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "write the BENCH_<date>.json report")
	out := fs.String("out", "", "report path (default BENCH_<date>.json; implies -json)")
	check := fs.String("check", "", "baseline BENCH json to gate against")
	short := fs.Bool("short", false, "CI-sized corpus (baselines only gate allocations at matching scale)")
	seed := fs.Uint64("seed", 42, "corpus seed")
	applyLog := addLogFlags(fs)
	fs.Parse(args)
	applyLog()

	logger.Info("measuring audit hot path", "short", *short)
	report, err := benchreg.Run(*short, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Print(report.Format())

	if *jsonOut || *out != "" {
		path := *out
		if path == "" {
			path = report.DefaultFileName()
		}
		if err := report.Write(path); err != nil {
			fatal(fmt.Errorf("writing %s: %w", path, err))
		}
		logger.Info("wrote bench report", "path", path)
	}

	var baseline *benchreg.Report
	if *check != "" {
		baseline, err = benchreg.Load(*check)
		if err != nil {
			fatal(err)
		}
	}
	violations := benchreg.Check(baseline, report)
	if len(violations) > 0 {
		for _, v := range violations {
			logger.Error("bench regression", "violation", v)
		}
		os.Exit(1)
	}
	if baseline != nil {
		// Informational per-stage breakdown: which stage moved when the
		// gated aggregates shift (a note when the baseline is schema 1).
		fmt.Print(benchreg.FormatStageDelta(baseline, report))
		logger.Info("bench gate passed", "baseline", *check,
			"tolerancePct", benchreg.Tolerance*100, "windowedFloor", benchreg.MinWindowedSpeedup)
	}
}
