package main

import (
	"flag"
	"fmt"
	"os"

	"sanity/internal/benchreg"
)

// benchMain runs the benchmark-regression harness: measure the audit
// hot path, write the BENCH_<date>.json report, and optionally gate
// against a checked-in baseline. Exit status 1 on any gate violation,
// so CI fails on a >25% regression (or on losing the windowed
// replay's required 2x speedup).
func benchMain(args []string) {
	fs := flag.NewFlagSet("tdrbench bench", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "write the BENCH_<date>.json report")
	out := fs.String("out", "", "report path (default BENCH_<date>.json; implies -json)")
	check := fs.String("check", "", "baseline BENCH json to gate against")
	short := fs.Bool("short", false, "CI-sized corpus (baselines only gate allocations at matching scale)")
	seed := fs.Uint64("seed", 42, "corpus seed")
	fs.Parse(args)

	fmt.Fprintf(os.Stderr, "measuring audit hot path (short=%v)...\n", *short)
	report, err := benchreg.Run(*short, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdrbench bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(report.Format())

	if *jsonOut || *out != "" {
		path := *out
		if path == "" {
			path = report.DefaultFileName()
		}
		if err := report.Write(path); err != nil {
			fmt.Fprintf(os.Stderr, "tdrbench bench: writing %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	var baseline *benchreg.Report
	if *check != "" {
		baseline, err = benchreg.Load(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tdrbench bench: %v\n", err)
			os.Exit(1)
		}
	}
	violations := benchreg.Check(baseline, report)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", v)
		}
		os.Exit(1)
	}
	if baseline != nil {
		fmt.Fprintf(os.Stderr, "within %0.f%% of baseline %s (and above the %.1fx windowed floor)\n",
			benchreg.Tolerance*100, *check, benchreg.MinWindowedSpeedup)
	}
}
