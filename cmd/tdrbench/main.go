// Command tdrbench regenerates every table and figure of the paper's
// evaluation (§6). Run it with no flags for the full sweep at the
// default (quick) sizes, select one experiment with -experiment, or
// approach the paper's dimensions with -full.
//
//	tdrbench -experiment fig7
//	tdrbench -experiment fig8 -full
//	tdrbench -experiment ablate
//
// The bench subcommand is the benchmark-regression harness: it
// measures the audit hot path (full vs windowed replay, cold vs
// memoized shard setup) with testing.Benchmark, writes a
// BENCH_<date>.json report, and can gate a run against a checked-in
// baseline:
//
//	tdrbench bench -json
//	tdrbench bench -json -short -check BENCH_2026-08-08.json
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"sanity/internal/experiments"
	"sanity/internal/obs"
)

// logger carries progress and diagnostics; stdout stays reserved for
// the rendered tables and figures.
var logger = slog.New(obs.NewLogHandler(os.Stderr, obs.LogOptions{}))

// addLogFlags registers -log-format/-log-level; the returned func
// installs the logger after fs.Parse.
func addLogFlags(fs *flag.FlagSet) func() {
	format := fs.String("log-format", "text", "log output format: 'text' or 'json'")
	level := fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	return func() {
		lvl, err := obs.ParseLogLevel(*level)
		if err != nil {
			fatal(err)
		}
		logger = slog.New(obs.NewLogHandler(os.Stderr, obs.LogOptions{Format: *format, Level: lvl}))
	}
}

func fatal(err error) {
	logger.Error("tdrbench failed", "err", err)
	os.Exit(1)
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		benchMain(os.Args[2:])
		return
	}
	var (
		which = flag.String("experiment", "all", "experiment to run: all|fig2|fig3|table2|fig6|fig7|log|fig8|noise|ablate|throughput|crossmachine|triage|replaywindow")
		full  = flag.Bool("full", false, "use paper-scale experiment sizes (slow)")
		seed  = flag.Uint64("seed", 42, "base noise seed")
	)
	flag.Parse()

	sizes := experiments.DefaultSizes()
	if *full {
		sizes = experiments.FullSizes()
	}
	run := func(name string, f func() (string, error)) {
		if *which != "all" && *which != name {
			return
		}
		t0 := time.Now()
		out, err := f()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println(out)
		fmt.Printf("  [%s completed in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("fig2", func() (string, error) {
		r, err := experiments.Figure2(sizes, *seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatFigure2(r), nil
	})
	run("fig3", func() (string, error) {
		r, err := experiments.Figure3(sizes, *seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatFigure3(r), nil
	})
	run("table2", func() (string, error) {
		r, err := experiments.Table2(sizes, *seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatTable2(r), nil
	})
	run("fig6", func() (string, error) {
		r, err := experiments.Figure6(sizes, *seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatFigure6(r), nil
	})
	run("fig7", func() (string, error) {
		r, err := experiments.Figure7(sizes, *seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatFigure7(r), nil
	})
	run("log", func() (string, error) {
		r, err := experiments.LogSize(sizes, *seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatLogSize(r), nil
	})
	run("fig8", func() (string, error) {
		r, err := experiments.Figure8(sizes, *seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatFigure8(r), nil
	})
	run("noise", func() (string, error) {
		fig7, err := experiments.Figure7(sizes, *seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatNoiseVsJitter(experiments.NoiseVsJitter(fig7)), nil
	})
	run("throughput", func() (string, error) {
		r, err := experiments.Throughput(sizes, *seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatThroughput(r), nil
	})
	run("crossmachine", func() (string, error) {
		r, err := experiments.CrossMachine(sizes, *seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatCrossMachine(r), nil
	})
	run("triage", func() (string, error) {
		r, err := experiments.TriageROC(sizes, *seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatTriageROC(r), nil
	})
	run("replaywindow", func() (string, error) {
		r, err := experiments.ReplayWindow(sizes, *seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatReplayWindow(r), nil
	})
	run("ablate", func() (string, error) {
		packets := 60
		if *full {
			packets = 200
		}
		r, err := experiments.Ablation(packets, *seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatAblation(r), nil
	})
}
