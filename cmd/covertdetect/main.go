// Command covertdetect audits a (simulated) NFS server for covert
// timing channels: it runs the server either clean or compromised
// with one of the paper's four channels, then scores the resulting
// trace with all five detectors — the four statistical ones and the
// Sanity/TDR detector, which replays the server's log on the
// known-good binary.
//
//	covertdetect -channel needle
//	covertdetect -channel none -packets 300
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"sanity/internal/core"
	"sanity/internal/covert"
	"sanity/internal/detect"
	"sanity/internal/hw"
	"sanity/internal/netsim"
	"sanity/internal/nfs"
	"sanity/internal/obs"
)

func main() {
	var (
		channel  = flag.String("channel", "needle", "covert channel: none|ipctc|trctc|mbctc|needle")
		packets  = flag.Int("packets", 250, "requests in the audited trace")
		seed     = flag.Uint64("seed", 7, "workload / noise seed")
		secret   = flag.String("secret", "s3cret!", "secret the channel exfiltrates")
		training = flag.Int("training", 8, "legitimate training traces for the statistical detectors")
	)
	flag.Parse()

	cfg := func(s uint64) core.Config {
		return core.Config{
			Machine:  hw.Optiplex9020(),
			Profile:  hw.ProfileSanity(),
			Seed:     s,
			Files:    nfs.FileStore(),
			MaxSteps: 4_000_000_000,
		}
	}
	record := func(wseed, eseed uint64, hook core.DelayHook) (*core.Execution, *detect.Trace) {
		w := nfs.ClientWorkload(*packets, netsim.DefaultThinkTime(), wseed)
		inputs := w.ToServerInputs(netsim.PaperPath(wseed^0xABC), 0)
		c := cfg(eseed)
		c.Hook = hook
		exec, log, err := core.Play(nfs.ServerProgram(), inputs, c)
		if err != nil {
			fatal(err)
		}
		return exec, &detect.Trace{IPDs: exec.OutputIPDs(), Log: log, Play: exec}
	}

	fmt.Printf("training statistical detectors on %d legitimate traces...\n", *training)
	var trainingIPDs [][]int64
	var pooled []int64
	for i := 0; i < *training; i++ {
		_, tr := record(*seed+100+uint64(i), *seed+200+uint64(i), nil)
		trainingIPDs = append(trainingIPDs, tr.IPDs)
		pooled = append(pooled, tr.IPDs...)
	}
	detectors, err := detect.Statistical(trainingIPDs)
	if err != nil {
		fatal(err)
	}
	// Scale the regularity window so short audits have enough windows.
	regWindow := *packets / 5
	if regWindow > 100 {
		regWindow = 100
	}
	if regWindow < 20 {
		regWindow = 20
	}
	for i, d := range detectors {
		if d.Name() == "regularity" {
			detectors[i] = detect.NewRegularity(regWindow)
		}
	}
	detectors = append(detectors, detect.NewTDR(nfs.ServerProgram(), cfg(*seed+999)))

	var hook core.DelayHook
	if *channel != "none" {
		chans, err := covert.All(pooled, *seed)
		if err != nil {
			fatal(err)
		}
		found := false
		for _, ch := range chans {
			if ch.Name() != *channel {
				continue
			}
			// Scale the needle's period to the audit length so the
			// trace carries several bits (the paper's 1/100 rate
			// assumes minute-long traces).
			if n, ok := ch.(*covert.Needle); ok {
				p := int64(*packets / 8)
				if p < 16 {
					p = 16
				}
				if p > 100 {
					p = 100
				}
				n.Period = p
			}
			bits := covert.BitsFromBytes([]byte(*secret))
			hook = ch.Hook(bits)
			found = true
			fmt.Printf("compromising the server with %s (exfiltrating %d bits of %q)\n",
				ch.Name(), len(bits), *secret)
		}
		if !found {
			fatal(fmt.Errorf("unknown channel %q", *channel))
		}
	} else {
		fmt.Println("server is clean (no channel)")
	}

	fmt.Printf("recording the audited trace (%d requests)...\n\n", *packets)
	exec, trace := record(*seed, *seed+1, hook)
	fmt.Printf("trace: %d responses, %.1f virtual seconds\n\n", len(exec.Outputs), float64(exec.TotalPs)/1e12)

	fmt.Println("detector scores (higher = more suspicious):")
	for _, d := range detectors {
		score, err := d.Score(trace)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", d.Name(), err))
		}
		verdict := ""
		if d.Name() == "sanity-tdr" {
			// The TDR score is the max IPD deviation vs replay; the
			// decision threshold is the replay noise floor vs WAN
			// jitter (§6.9): anything above 2% is unexplainable by
			// hardware noise.
			if score > 0.02 {
				verdict = "  << COVERT TIMING CHANNEL DETECTED"
			} else {
				verdict = "  (within TDR noise floor)"
			}
			fmt.Printf("  %-12s %10.4f%% max IPD deviation%s\n", d.Name(), score*100, verdict)
			continue
		}
		fmt.Printf("  %-12s %12.4f\n", d.Name(), score)
	}
}

var logger = slog.New(obs.NewLogHandler(os.Stderr, obs.LogOptions{}))

func fatal(err error) {
	logger.Error("covertdetect failed", "err", err)
	os.Exit(1)
}
