module sanity

go 1.24
