package sanity_test

import (
	"testing"

	"sanity"
)

// cloudcheckSrc is the examples/cloudcheck program: rounds of
// memory-heavy array-walk work, a heartbeat packet after each round.
// The walk's cache behavior is what makes timing depend on the
// machine type.
const cloudcheckSrc = `
.program cloudcheck
.func main 0 6
    iconst 65536
    newarr int
    store 0
    iconst 0
    store 1              ; round
rounds:
    load 1
    iconst 6
    if_icmpge done
    iconst 0
    store 2
work:
    load 2
    iconst 65536
    if_icmpge beat
    load 0
    load 2
    load 2
    load 1
    imul
    astore
    iinc 2 7
    goto work
beat:
    iconst 4
    newarr byte
    store 3
    load 3
    iconst 0
    load 1
    astore
    load 3
    ncall io.send 1
    pop
    iinc 1 1
    goto rounds
done:
    ret
.end`

// TestCloudcheckScenario pins down the examples/cloudcheck behavior —
// the paper's Figure 1(a) cloud verification — as a test, so the
// example cannot silently rot: replaying an honest type-T recording on
// a local T machine must line up (deviation well under the 5%
// verdict threshold the example prints), and replaying a recording
// that secretly ran on the cheaper T' must diverge far beyond it.
func TestCloudcheckScenario(t *testing.T) {
	prog, err := sanity.Assemble("cloudcheck", cloudcheckSrc)
	if err != nil {
		t.Fatal(err)
	}
	run := func(machine sanity.MachineSpec, seed uint64) (*sanity.Execution, *sanity.Log) {
		t.Helper()
		cfg := sanity.DefaultConfig(seed)
		cfg.Machine = machine
		exec, lg, err := sanity.Play(prog, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return exec, lg
	}
	replayOnT := func(lg *sanity.Log, seed uint64) *sanity.Execution {
		t.Helper()
		cfg := sanity.DefaultConfig(seed)
		cfg.Machine = sanity.Optiplex9020()
		exec, err := sanity.ReplayTDR(prog, lg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return exec
	}

	const threshold = 0.05 // the example's verdict line

	// Case 1: Alice provisions the promised type T.
	honest, honestLog := run(sanity.Optiplex9020(), 11)
	cmp, err := sanity.Compare(honest, replayOnT(honestLog, 12))
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OutputsMatch {
		t.Fatal("honest replay diverged functionally")
	}
	if len(honest.Outputs) != 6 {
		t.Fatalf("heartbeats: %d, want 6", len(honest.Outputs))
	}
	if cmp.TotalRelDev >= threshold/5 {
		t.Fatalf("honest T-vs-T deviation %.4f%%; the promised hardware must line up", cmp.TotalRelDev*100)
	}

	// Case 2: Alice secretly runs Bob on the cheaper T'.
	cheat, cheatLog := run(sanity.SlowerT(), 21)
	cmp2, err := sanity.Compare(cheat, replayOnT(cheatLog, 22))
	if err != nil {
		t.Fatal(err)
	}
	if !cmp2.OutputsMatch {
		t.Fatal("cheat replay must still be functionally equivalent — only the timing betrays T'")
	}
	if cmp2.TotalRelDev <= threshold {
		t.Fatalf("T'-vs-T deviation %.2f%% under the %.0f%% verdict threshold; the heartbeat divergence must flag", cmp2.TotalRelDev*100, threshold*100)
	}
	// The divergence direction is physical: the slower machine's
	// observed run takes longer than the type-T replay reconstructs.
	if cheat.TotalPs <= honest.TotalPs {
		t.Fatalf("T' run (%d ps) not slower than T run (%d ps)", cheat.TotalPs, honest.TotalPs)
	}

	// And the cross-machine calibration closes the loop. The naive
	// clock ratio is NOT enough for this cache-heavy workload (the two
	// types differ in L3 and DRAM cost, not just clock speed) — which
	// is exactly why internal/calib fits the effective dilation from
	// known-good runs instead of deriving it from specs. Emulate the
	// fit with an independent training run: a known-good T' recording
	// replayed on T gives the pair's effective scale, which then
	// explains the cheat recording's timing.
	training, trainingLog := run(sanity.SlowerT(), 31)
	trainingReplay := replayOnT(trainingLog, 32)
	scale := float64(training.TotalPs) / float64(trainingReplay.TotalPs)
	clockRatio := float64(sanity.SlowerT().PsPerCycle()) / float64(sanity.Optiplex9020().PsPerCycle())
	if scale <= clockRatio {
		t.Fatalf("effective dilation %.3f not above the bare clock ratio %.3f; cache effects should add cost on T'", scale, clockRatio)
	}
	cmp3, err := sanity.CompareCalibrated(cheat, replayOnT(cheatLog, 23), sanity.Calibration{Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	if cmp3.TotalRelDev >= threshold/5 {
		t.Fatalf("fitted calibration leaves %.2f%% total deviation; the trained dilation should explain the T' timing", cmp3.TotalRelDev*100)
	}
}
